"""Unit tests for expected belief (Definition 6.1) and Jeffrey decomposition."""

from fractions import Fraction

from repro import (
    achieved_probability,
    expected_belief,
    expected_belief_decomposition,
    jeffrey_conditional,
)
from repro.apps.figure1 import phi_alpha
from repro.apps.firing_squad import ALICE, FIRE, both_fire
from repro.apps.theorem52 import AGENT_I, ALPHA, bit_is_one


class TestExpectedBelief:
    def test_firing_squad_expectation(self, firing_squad):
        assert expected_belief(firing_squad, ALICE, both_fire(), FIRE) == Fraction(
            99, 100
        )

    def test_theorem52_expectation_equals_p(self, theorem52):
        assert expected_belief(theorem52, AGENT_I, bit_is_one(), ALPHA) == Fraction(
            9, 10
        )

    def test_figure1_dependent_fact_diverges(self, figure1):
        # Without independence the identity fails: 1 vs 1/2.
        assert achieved_probability(figure1, "i", phi_alpha(), "alpha") == 1
        assert expected_belief(figure1, "i", phi_alpha(), "alpha") == Fraction(1, 2)


class TestDecomposition:
    def test_cells_sum_to_expectation(self, firing_squad):
        cells = expected_belief_decomposition(firing_squad, ALICE, both_fire(), FIRE)
        total = sum(cell.contribution for cell in cells.values())
        assert total == expected_belief(firing_squad, ALICE, both_fire(), FIRE)

    def test_weights_sum_to_one(self, firing_squad):
        cells = expected_belief_decomposition(firing_squad, ALICE, both_fire(), FIRE)
        assert sum(cell.weight for cell in cells.values()) == 1

    def test_firing_squad_three_acting_states(self, firing_squad):
        cells = expected_belief_decomposition(firing_squad, ALICE, both_fire(), FIRE)
        # Alice fires in three information states: Yes / No / nothing.
        assert len(cells) == 3
        beliefs = sorted(cell.belief for cell in cells.values())
        assert beliefs == [0, Fraction(99, 100), 1]

    def test_firing_squad_weights(self, firing_squad):
        cells = expected_belief_decomposition(firing_squad, ALICE, both_fire(), FIRE)
        weights = sorted(cell.weight for cell in cells.values())
        # Given Alice fires (go=1): 'No' 0.009, nothing 0.1, 'Yes' 0.891.
        assert weights == [
            Fraction(9, 1000),
            Fraction(1, 10),
            Fraction(891, 1000),
        ]

    def test_theorem52_cells(self, theorem52):
        cells = expected_belief_decomposition(theorem52, AGENT_I, bit_is_one(), ALPHA)
        beliefs = sorted(cell.belief for cell in cells.values())
        assert beliefs == [Fraction(8, 9), 1]  # (p-eps)/(1-eps) = 8/9, and 1


class TestJeffreyConditional:
    def test_agrees_with_direct_when_independent(self, firing_squad):
        assert jeffrey_conditional(
            firing_squad, ALICE, both_fire(), FIRE
        ) == achieved_probability(firing_squad, ALICE, both_fire(), FIRE)

    def test_agrees_with_direct_even_when_dependent(self, figure1):
        # Jeffrey decomposition computes the inner conditionals exactly,
        # so it matches the direct value for every fact.
        assert jeffrey_conditional(
            figure1, "i", phi_alpha(), "alpha"
        ) == achieved_probability(figure1, "i", phi_alpha(), "alpha")

    def test_theorem52(self, theorem52):
        assert jeffrey_conditional(
            theorem52, AGENT_I, bit_is_one(), ALPHA
        ) == Fraction(9, 10)
