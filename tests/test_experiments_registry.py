"""The claim registry must reproduce every paper value exactly."""

from repro.analysis.experiments import paper_experiments
from repro.analysis.report import format_experiments


class TestPaperExperiments:
    def test_every_claim_matches(self):
        records = paper_experiments()
        mismatches = [record for record in records if not record.matches]
        assert not mismatches, format_experiments(mismatches)

    def test_registry_covers_all_experiment_ids(self):
        ids = {record.experiment for record in paper_experiments()}
        assert {"E1", "E2", "E3", "E4", "E5", "E7", "E8", "E11"} <= ids

    def test_registry_is_deterministic(self):
        first = paper_experiments()
        second = paper_experiments()
        assert [(r.quantity, r.measured) for r in first] == [
            (r.quantity, r.measured) for r in second
        ]

    def test_table_renders(self):
        table = format_experiments(paper_experiments())
        assert "99/100" in table
        assert "MISMATCH" not in table
