"""Unit tests for the Fact algebra and its run-fact structure."""

import pytest

from repro import (
    FALSE,
    TRUE,
    LambdaFact,
    LambdaRunFact,
    always,
    at_time,
    eventually,
    fact_equivalent,
    points_satisfying,
    runs_satisfying,
)
from repro.core.facts import And, Not, Or


class TestBooleanAlgebra:
    def test_true_everywhere(self, two_coin_tree):
        assert all(
            TRUE.holds(two_coin_tree, run, t) for run, t in two_coin_tree.points()
        )

    def test_false_nowhere(self, two_coin_tree):
        assert not any(
            FALSE.holds(two_coin_tree, run, t) for run, t in two_coin_tree.points()
        )

    def test_negation(self, two_coin_tree):
        assert fact_equivalent(two_coin_tree, ~TRUE, FALSE)

    def test_double_negation(self, two_coin_tree):
        assert fact_equivalent(two_coin_tree, ~~TRUE, TRUE)

    def test_conjunction(self, two_coin_tree):
        assert fact_equivalent(two_coin_tree, TRUE & FALSE, FALSE)
        assert fact_equivalent(two_coin_tree, TRUE & TRUE, TRUE)

    def test_disjunction(self, two_coin_tree):
        assert fact_equivalent(two_coin_tree, TRUE | FALSE, TRUE)
        assert fact_equivalent(two_coin_tree, FALSE | FALSE, FALSE)

    def test_implication(self, two_coin_tree):
        assert fact_equivalent(two_coin_tree, FALSE.implies(TRUE), TRUE)
        assert fact_equivalent(two_coin_tree, TRUE.implies(FALSE), FALSE)

    def test_de_morgan(self, two_coin_tree):
        p = at_time(0)
        q = at_time(1)
        assert fact_equivalent(two_coin_tree, ~(p & q), ~p | ~q)

    def test_empty_connectives_rejected(self):
        with pytest.raises(ValueError):
            And()
        with pytest.raises(ValueError):
            Or()

    def test_labels_compose(self):
        assert (TRUE & FALSE).label == "(true & false)"
        assert (~TRUE).label == "~true"


class TestRunFactStructure:
    def test_constants_are_run_facts(self):
        assert TRUE.is_run_fact and FALSE.is_run_fact

    def test_transient_fact_is_not_run_fact(self):
        assert not at_time(0).is_run_fact

    def test_connectives_preserve_run_factness(self):
        assert (TRUE & FALSE).is_run_fact
        assert (TRUE | FALSE).is_run_fact
        assert (~TRUE).is_run_fact

    def test_mixing_breaks_run_factness(self):
        assert not (TRUE & at_time(0)).is_run_fact

    def test_holds_in_run_rejects_transient(self, two_coin_tree):
        with pytest.raises(TypeError):
            at_time(0).holds_in_run(two_coin_tree, two_coin_tree.runs[0])

    def test_runs_satisfying_rejects_transient(self, two_coin_tree):
        with pytest.raises(TypeError):
            runs_satisfying(two_coin_tree, at_time(0))

    def test_lambda_run_fact(self, two_coin_tree):
        heads = LambdaRunFact(
            lambda pps, run: run.local("obs", 0) == (0, "H"), label="heads"
        )
        assert len(runs_satisfying(two_coin_tree, heads)) == 2


class TestTemporalClosures:
    def test_eventually_lifts_to_run_fact(self, two_coin_tree):
        assert eventually(at_time(1)).is_run_fact

    def test_eventually_semantics(self, two_coin_tree):
        # every run reaches time 1
        ev = eventually(at_time(1))
        assert runs_satisfying(two_coin_tree, ev) == frozenset(
            r.index for r in two_coin_tree.runs
        )

    def test_always_semantics(self, two_coin_tree):
        # no run is always at time 1
        assert runs_satisfying(two_coin_tree, always(at_time(1))) == frozenset()

    def test_always_of_true(self, two_coin_tree):
        assert runs_satisfying(two_coin_tree, always(TRUE)) == frozenset(
            r.index for r in two_coin_tree.runs
        )

    def test_eventually_always_duality(self, two_coin_tree):
        phi = at_time(0)
        assert fact_equivalent(
            two_coin_tree, ~eventually(phi), always(~phi)
        )


class TestPointQueries:
    def test_points_satisfying_at_time(self, two_coin_tree):
        points = points_satisfying(two_coin_tree, at_time(1))
        assert points == {(r.index, 1) for r in two_coin_tree.runs}

    def test_lambda_fact(self, two_coin_tree):
        odd_time = LambdaFact(lambda pps, run, t: t % 2 == 1, label="odd")
        points = points_satisfying(two_coin_tree, odd_time)
        assert all(t == 1 for _, t in points)

    def test_fact_equivalent_negative(self, two_coin_tree):
        assert not fact_equivalent(two_coin_tree, TRUE, at_time(0))
