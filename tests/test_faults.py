"""Deterministic fault injection + supervised degradation (ISSUE 10).

Three layers under test (see ``docs/robustness.md``):

* :class:`~repro.core.faults.FaultPlan` — the spec grammar, seeded
  determinism of probabilistic clauses, attempt-keyed decisions, and
  the env knob;
* the resilience ledger — :func:`record_degradation` only accepts
  moves on the ladder, worker deltas absorb losslessly;
* :class:`~repro.core.shard.ShardedExecutor` as supervisor — every
  injected fault combination that does not exhaust the retry budget
  must recover to Fraction-bit-identical masks, every downgrade must
  appear on the report, exhaustion must name the failing shard, and
  no ``/dev/shm`` segment may survive a crashed or abandoned query.
"""

from __future__ import annotations

import glob
import os
from fractions import Fraction

import pytest

import repro.core.faults as faults_module
from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_run_fact,
    random_state_fact,
)
from repro.analysis.sweep import refrain_threshold_sweep
from repro.core import arraykernel
from repro.core.arraykernel import WeightKernel
from repro.core.engine import SystemIndex
from repro.core.errors import FaultExhaustedError, FaultSpecError
from repro.core.facts import eventually
from repro.core.faults import (
    DEGRADATION_LADDER,
    SITES,
    FaultPlan,
    FaultRule,
    absorb_events,
    fault_plan,
    record_degradation,
    record_retry,
    report_delta,
    reset_resilience_report,
    resilience_report,
    set_fault_plan,
)
from repro.core.lazyprob import exact_value
from repro.core.shard import ShardedExecutor


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """No plan and a fresh report around every test, whatever happens."""
    previous = set_fault_plan(None)
    reset_resilience_report()
    yield
    set_fault_plan(previous)
    reset_resilience_report()


# ----------------------------------------------------------------------
# FaultPlan: grammar + deterministic decisions
# ----------------------------------------------------------------------


class TestFaultPlanParsing:
    def test_full_grammar_round_trip(self):
        plan = FaultPlan.parse(
            "worker-crash@0,2:3~0.5; shm-alloc:*; task-submit; seed=7; hang=1.5"
        )
        assert plan.seed == 7
        assert plan.hang_seconds == 1.5
        crash, alloc, submit = plan.rules
        assert crash == FaultRule("worker-crash", ("0", "2"), 3, 0.5)
        assert alloc == FaultRule("shm-alloc", None, None, 1.0)
        assert submit == FaultRule("task-submit", None, 1, 1.0)

    def test_empty_spec_and_blank_clauses(self):
        assert FaultPlan.parse("").rules == ()
        assert FaultPlan.parse(" ; ;; ").rules == ()

    @pytest.mark.parametrize(
        "spec",
        [
            "meteor-strike",  # unknown site
            "worker-crash:0",  # non-positive hits
            "worker-crash:x",  # non-integer hits
            "worker-crash~0",  # prob out of (0, 1]
            "worker-crash~1.5",
            "worker-crash~often",
            "worker-crash@",  # empty key list
            "seed=soon",  # bad option values
            "hang=-1",
            "retries=3",  # unknown option
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_constructor_validates_sites(self):
        with pytest.raises(FaultSpecError):
            FaultPlan([FaultRule(site="not-a-site")])

    def test_every_documented_site_parses(self):
        for site in sorted(SITES):
            assert FaultPlan.parse(site).rules[0].site == site


class TestFaultPlanDecisions:
    def test_hits_bound_attempts(self):
        plan = FaultPlan.parse("task-submit:2")
        fired = [plan.should_fire("task-submit", 0, attempt=a) for a in range(4)]
        assert fired == [True, True, False, False]

    def test_unbounded_star_never_stops(self):
        plan = FaultPlan.parse("shm-alloc:*")
        assert all(plan.should_fire("shm-alloc", 0, attempt=a) for a in range(10))

    def test_keys_restrict_units(self):
        plan = FaultPlan.parse("worker-crash@1,3")
        assert not plan.should_fire("worker-crash", 0, attempt=0)
        assert plan.should_fire("worker-crash", 1, attempt=0)
        assert not plan.should_fire("worker-crash", 2, attempt=0)
        assert plan.should_fire("worker-crash", 3, attempt=0)

    def test_arrival_counter_when_no_attempt(self):
        plan = FaultPlan.parse("backend-import:1")
        assert plan.should_fire("backend-import")
        assert not plan.should_fire("backend-import")
        assert not plan.should_fire("backend-import")

    def test_unlisted_site_never_fires(self):
        plan = FaultPlan.parse("shm-alloc:*")
        assert not plan.should_fire("worker-crash", 0, attempt=0)

    def test_unknown_site_query_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse("shm-alloc").should_fire("meteor-strike")

    def test_probabilistic_coin_is_seeded_and_deterministic(self):
        decide = lambda seed: [
            FaultPlan.parse(f"shm-corrupt~0.5;seed={seed}").should_fire(
                "shm-corrupt", k, attempt=0
            )
            for k in range(64)
        ]
        first, again = decide(3), decide(3)
        assert first == again  # a pure function of (seed, site, key, attempt)
        assert 0 < sum(first) < 64  # the coin actually lands both ways
        assert decide(4) != first  # and the seed actually matters

    def test_fired_log_records_events(self):
        plan = FaultPlan.parse("worker-crash@2")
        plan.should_fire("worker-crash", 2, attempt=0)
        (event,) = plan.fired
        assert (event.site, event.key, event.attempt) == ("worker-crash", "2", 0)


class TestActivePlan:
    def test_set_fault_plan_rejects_non_plans(self):
        with pytest.raises(TypeError):
            set_fault_plan("shm-alloc:*")

    def test_set_and_restore(self):
        plan = FaultPlan.parse("shm-alloc")
        previous = set_fault_plan(plan)
        assert fault_plan() is plan
        assert set_fault_plan(previous) is plan

    def test_env_knob_loads_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "shm-alloc:*;seed=3")
        monkeypatch.setattr(faults_module, "_active", None)
        monkeypatch.setattr(faults_module, "_env_loaded", False)
        plan = fault_plan()
        assert plan is not None
        assert plan.seed == 3
        assert plan.rules[0].site == "shm-alloc"


# ----------------------------------------------------------------------
# Degradation ladder + resilience report
# ----------------------------------------------------------------------


class TestResilienceReport:
    def test_only_ladder_moves_are_recordable(self):
        with pytest.raises(ValueError):
            record_degradation("morale", "high", "low", "mondays")
        with pytest.raises(ValueError):
            record_degradation("execution", "serial", "parallel", "upgrade?")
        for area, (from_mode, to_mode) in DEGRADATION_LADDER.items():
            record_degradation(area, from_mode, to_mode, "test")
        report = resilience_report()
        assert len(report.events) == len(DEGRADATION_LADDER)
        assert len(report.degradations("transport")) == 1

    def test_delta_absorbs_losslessly(self):
        record_degradation("transport", "shm", "pickle", "shm-alloc-failed")
        record_retry("shard", 2, 1, OSError("boom"))
        delta = report_delta()
        reset_resilience_report()
        assert resilience_report().events == []
        absorb_events(delta)
        report = resilience_report()
        assert report.events[0].reason == "shm-alloc-failed"
        assert report.retries[0].key == "2"
        assert "OSError" in report.retries[0].error

    def test_summary_names_every_entry(self):
        record_degradation("backend", "numpy", "python", "numpy-import-failed")
        record_retry("submit", 0, 0, RuntimeError("nope"))
        summary = resilience_report().summary()
        assert "degradations=1 retries=1" in summary
        assert "numpy -> python" in summary
        assert "submit@0" in summary


# ----------------------------------------------------------------------
# Supervised execution: injected faults must degrade, never drift
# ----------------------------------------------------------------------


def _case(seed: int):
    facts = [
        eventually(random_state_fact(seed + 40)),
        random_run_fact(seed + 41),
    ]
    reference = SystemIndex.of(
        random_protocol_system(seed, mixed_level=0.5)
    ).events_of(facts)
    return facts, reference


def _run_supervised(spec, *, seed: int = 5, queries: int = 1, **kwargs):
    """One sharded query under ``spec``; returns (masks, reference, report)."""
    facts, reference = _case(seed)
    reset_resilience_report()
    previous = set_fault_plan(FaultPlan.parse(spec) if spec else None)
    try:
        index = SystemIndex.of(random_protocol_system(seed, mixed_level=0.5))
        with ShardedExecutor(
            index, shards=3, payload=tuple(facts), **kwargs
        ) as executor:
            masks = executor.events_of(facts)
            for _ in range(queries - 1):
                assert executor.events_of(facts) == masks
    finally:
        set_fault_plan(previous)
    return masks, reference, resilience_report()


def _no_repro_segments():
    return not os.path.isdir("/dev/shm") or glob.glob("/dev/shm/repro_*") == []


class TestSupervisedExecutor:
    def test_clean_run_reports_nothing(self):
        masks, reference, report = _run_supervised(None)
        assert masks == reference
        assert report.events == [] and report.retries == []

    def test_worker_crash_mid_query_recovers(self):
        masks, reference, report = _run_supervised("worker-crash@0")
        assert masks == reference
        assert any(retry.site == "shard" for retry in report.retries)
        assert _no_repro_segments()

    def test_hang_then_timeout_recovers(self):
        masks, reference, report = _run_supervised(
            "worker-hang@1;hang=30", task_timeout=1.0
        )
        assert masks == reference
        assert any(retry.site == "shard" for retry in report.retries)
        assert _no_repro_segments()

    def test_shm_exhaustion_degrades_transport(self):
        masks, reference, report = _run_supervised("shm-alloc:*")
        assert masks == reference
        transport = report.degradations("transport")
        assert transport and all(
            event.reason == "shm-alloc-failed" for event in transport
        )
        assert report.retries == []  # pickle fallback, not a retry

    def test_corrupted_segment_checksum_retried(self):
        masks, reference, report = _run_supervised("shm-corrupt@1")
        assert masks == reference
        corrupt = [r for r in report.retries if "ShmIntegrityError" in r.error]
        assert corrupt and corrupt[0].key == "1"
        assert _no_repro_segments()

    def test_retry_exhaustion_raises_naming_the_shard(self):
        facts, _ = _case(5)
        previous = set_fault_plan(FaultPlan.parse("worker-crash@0:*"))
        try:
            index = SystemIndex.of(random_protocol_system(5, mixed_level=0.5))
            with ShardedExecutor(
                index, shards=3, payload=tuple(facts), on_exhaustion="raise"
            ) as executor:
                with pytest.raises(FaultExhaustedError) as excinfo:
                    executor.events_of(facts)
        finally:
            set_fault_plan(previous)
        message = str(excinfo.value)
        assert "shard 0" in message and "attempt" in message
        assert _no_repro_segments()

    def test_retry_exhaustion_degrades_to_serial_with_parity(self):
        masks, reference, report = _run_supervised("worker-crash@0:*", queries=2)
        assert masks == reference
        exhausted = report.degradations("execution")
        assert exhausted and exhausted[0].reason in (
            "retry-exhausted",
            "respawn-exhausted",
        )
        assert "shard 0" in exhausted[0].detail
        assert _no_repro_segments()

    def test_no_segment_survives_abandoned_executor(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        facts, reference = _case(7)
        previous = set_fault_plan(FaultPlan.parse("worker-crash@2"))
        try:
            index = SystemIndex.of(random_protocol_system(7, mixed_level=0.5))
            executor = ShardedExecutor(index, shards=3, payload=tuple(facts))
            assert executor.events_of(facts) == reference
            # Abandon without close(): parent-named segments must already
            # have been consumed or reaped during supervision.
            executor._retire_pool(kill=True)
        finally:
            set_fault_plan(previous)
        assert glob.glob("/dev/shm/repro_*") == []


# ----------------------------------------------------------------------
# Backend + sweep injection points
# ----------------------------------------------------------------------


@pytest.mark.skipif(not arraykernel.HAVE_NUMPY, reason="NumPy not installed")
def test_backend_import_fault_degrades_to_python():
    previous_backend = arraykernel.backend()
    arraykernel.set_backend("numpy")
    previous = set_fault_plan(FaultPlan.parse("backend-import:*"))
    try:
        kernel = WeightKernel([1, 2, 3])
        assert not kernel.vectorized
        assert arraykernel.backend() == "python"
        (event,) = resilience_report().degradations("backend")
        assert (event.from_mode, event.to_mode) == ("numpy", "python")
        assert event.reason == "numpy-import-failed"
    finally:
        set_fault_plan(previous)
        arraykernel.set_backend(previous_backend)


def test_sweep_task_submit_fault_is_retried_transparently():
    def case():
        pps = random_protocol_system(23, mixed_level=0.5)
        agent = pps.agents[0]
        action = proper_actions_of(pps, agent)[0]
        phi = eventually(random_state_fact(63))
        thresholds = [Fraction(k, 6) for k in range(7)]
        return pps, agent, phi, action, thresholds

    pps, agent, phi, action, thresholds = case()
    serial = refrain_threshold_sweep(pps, agent, phi, action, thresholds)
    previous = set_fault_plan(FaultPlan.parse("task-submit:1"))
    try:
        pps2, agent, phi, action, thresholds = case()
        injected = refrain_threshold_sweep(
            pps2, agent, phi, action, thresholds, parallel=2
        )
        report = resilience_report()
    finally:
        set_fault_plan(previous)
    assert any(retry.site == "submit" for retry in report.retries)
    assert len(injected) == len(serial)
    for a, b in zip(serial, injected):
        assert a["threshold"] == b["threshold"]
        for column in ("achieved", "coverage"):
            assert exact_value(a[column]) == exact_value(b[column])
