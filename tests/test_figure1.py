"""Integration tests for the Figure 1 counterexample (experiments E2/E3)."""

from fractions import Fraction

from repro import (
    achieved_probability,
    belief_at_action,
    check_theorem_4_2,
    check_theorem_6_2,
    expected_belief,
    is_local_state_independent,
)
from repro.apps.figure1 import (
    AGENT,
    ALPHA,
    build_figure1,
    phi_alpha,
    psi_not_alpha,
)


class TestSection4Counterexample:
    """psi = ~does(alpha): thresholds met, constraint violated."""

    def test_belief_is_half_when_acting(self, figure1):
        performing = next(r for r in figure1.runs if r.performs(AGENT, ALPHA))
        assert belief_at_action(
            figure1, AGENT, psi_not_alpha(), ALPHA, performing
        ) == Fraction(1, 2)

    def test_mu_is_zero(self, figure1):
        assert achieved_probability(figure1, AGENT, psi_not_alpha(), ALPHA) == 0

    def test_sufficiency_would_fail_without_independence(self, figure1):
        # belief >= 1/2 always when acting, yet mu = 0 < 1/2.
        check = check_theorem_4_2(figure1, AGENT, ALPHA, psi_not_alpha(), "1/2")
        assert check.premises["belief-meets-threshold-always"]
        assert not check.conclusion
        # The theorem survives because independence fails:
        assert not check.premises["local-state-independent"]
        assert check.verified

    def test_dependence_detected(self, figure1):
        assert not is_local_state_independent(
            figure1, psi_not_alpha(), AGENT, ALPHA
        )


class TestSection6Counterexample:
    """phi = does(alpha): mu = 1 but expected belief = 1/2."""

    def test_mu_is_one(self, figure1):
        assert achieved_probability(figure1, AGENT, phi_alpha(), ALPHA) == 1

    def test_expected_belief_is_half(self, figure1):
        assert expected_belief(figure1, AGENT, phi_alpha(), ALPHA) == Fraction(1, 2)

    def test_expectation_identity_fails_without_independence(self, figure1):
        check = check_theorem_6_2(figure1, AGENT, ALPHA, phi_alpha())
        assert not check.conclusion
        assert not check.premises["local-state-independent"]
        assert check.verified


class TestParametrizedMixing:
    def test_belief_tracks_mixing_probability(self):
        for mix in ("1/4", "2/3"):
            system = build_figure1(mix=mix)
            performing = next(r for r in system.runs if r.performs(AGENT, ALPHA))
            assert belief_at_action(
                system, AGENT, phi_alpha(), ALPHA, performing
            ) == Fraction(mix)

    def test_pure_action_restores_the_identity(self):
        # mix = 1: alpha is deterministic, independence holds, and the
        # expectation identity is exact.
        system = build_figure1(mix=1)
        check = check_theorem_6_2(system, AGENT, ALPHA, phi_alpha())
        assert check.applicable and check.conclusion

    def test_expected_belief_equals_mix(self):
        system = build_figure1(mix="1/3")
        assert expected_belief(system, AGENT, phi_alpha(), ALPHA) == Fraction(1, 3)
