"""Integration tests: every Example 1 / Section 8 number, exactly.

This file is the written-down form of experiment E1/E7 of DESIGN.md:
each paper-claimed quantity is asserted as an exact rational.
"""

from fractions import Fraction

from repro import (
    analyze,
    achieved_probability,
    belief,
    check_corollary_7_2,
    expected_belief,
    expected_belief_decomposition,
    is_local_state_independent,
    performed,
    threshold_met_measure,
)
from repro.apps.firing_squad import (
    ALICE,
    BOB,
    FIRE,
    THRESHOLD,
    AliceProtocol,
    both_fire,
    build_firing_squad,
    fire_alice,
    fire_bob,
)


class TestSpecNumbers:
    def test_success_probability_is_99_percent(self, firing_squad):
        assert achieved_probability(
            firing_squad, ALICE, both_fire(), FIRE
        ) == Fraction(99, 100)

    def test_spec_satisfied(self, firing_squad):
        assert achieved_probability(firing_squad, ALICE, both_fire(), FIRE) >= THRESHOLD

    def test_neither_fires_when_go_is_zero(self, firing_squad):
        no_go = [
            run
            for run in firing_squad.runs
            if run.local(ALICE, 0)[1].payload == 0
        ]
        assert no_go
        for run in no_go:
            assert not run.performs(ALICE, FIRE)
            assert not run.performs(BOB, FIRE)

    def test_alice_always_fires_when_go_is_one(self, firing_squad):
        go_runs = [
            run
            for run in firing_squad.runs
            if run.local(ALICE, 0)[1].payload == 1
        ]
        assert go_runs
        for run in go_runs:
            assert run.performs(ALICE, FIRE) == (2,)

    def test_bob_fires_iff_message_received(self, firing_squad):
        for run in firing_squad.runs:
            received = bool(run.local(BOB, 1)[1].received(0))
            assert bool(run.performs(BOB, FIRE)) == received


class TestAliceBeliefs:
    def test_three_acting_information_states(self, firing_squad):
        cells = expected_belief_decomposition(firing_squad, ALICE, both_fire(), FIRE)
        assert len(cells) == 3

    def test_belief_values_match_paper(self, firing_squad):
        cells = expected_belief_decomposition(firing_squad, ALICE, both_fire(), FIRE)
        assert sorted(cell.belief for cell in cells.values()) == [
            Fraction(0),  # received 'No'
            Fraction(99, 100),  # received nothing (Bob's reply lost)
            Fraction(1),  # received 'Yes'
        ]

    def test_threshold_met_measure_is_991_over_1000(self, firing_squad):
        assert threshold_met_measure(
            firing_squad, ALICE, both_fire(), FIRE, THRESHOLD
        ) == Fraction(991, 1000)

    def test_threshold_missed_measure_is_9_over_1000(self, firing_squad):
        # "Alice fires without her beliefs meeting the threshold only
        # with a probability of 0.009 = 0.1 * 0.1 * 0.9."
        assert 1 - threshold_met_measure(
            firing_squad, ALICE, both_fire(), FIRE, THRESHOLD
        ) == Fraction(9, 1000)

    def test_paper_remark_991_exceeds_95(self, firing_squad):
        assert threshold_met_measure(
            firing_squad, ALICE, both_fire(), FIRE, THRESHOLD
        ) >= THRESHOLD

    def test_certain_not_firing_case_exists(self, firing_squad):
        # The striking run: both messages lost, 'No' delivered — Alice
        # fires while *certain* Bob is not firing.
        cells = expected_belief_decomposition(firing_squad, ALICE, both_fire(), FIRE)
        zero_cells = [c for c in cells.values() if c.belief == 0]
        assert len(zero_cells) == 1
        assert zero_cells[0].weight == Fraction(9, 1000)


class TestExpectationTheorem:
    def test_expected_belief_equals_achieved(self, firing_squad):
        assert expected_belief(firing_squad, ALICE, both_fire(), FIRE) == Fraction(
            99, 100
        )

    def test_independence_via_deterministic_firing(self, firing_squad):
        assert is_local_state_independent(firing_squad, both_fire(), ALICE, FIRE)

    def test_corollary_72_section_7_reading(self, firing_squad):
        # mu >= 0.99 = 1 - 0.1^2 implies belief >= 0.9 w.p. >= 0.9.
        check = check_corollary_7_2(firing_squad, ALICE, FIRE, both_fire(), "0.1")
        assert check.applicable and check.conclusion
        assert check.details["strong-belief-measure"] >= Fraction(9, 10)


class TestImprovedProtocol:
    def test_success_rises_to_990_over_991(self, firing_squad_improved):
        assert achieved_probability(
            firing_squad_improved, ALICE, both_fire(), FIRE
        ) == Fraction(990, 991)

    def test_paper_decimal_matches(self, firing_squad_improved):
        value = achieved_probability(firing_squad_improved, ALICE, both_fire(), FIRE)
        assert abs(float(value) - 0.99899) < 1e-5

    def test_alice_never_fires_with_zero_belief(self, firing_squad_improved):
        cells = expected_belief_decomposition(
            firing_squad_improved, ALICE, both_fire(), FIRE
        )
        assert all(cell.belief > 0 for cell in cells.values())

    def test_bob_behaviour_unchanged(self, firing_squad, firing_squad_improved):
        original = achieved_probability(
            firing_squad, BOB, performed(ALICE, FIRE), FIRE
        )
        improved = achieved_probability(
            firing_squad_improved, BOB, performed(ALICE, FIRE), FIRE
        )
        # Bob fires under the same channel conditions; only Alice's
        # firing set shrank, so Bob's success given his firing rises.
        assert improved >= original


class TestParameterization:
    def test_lossless_channel_gives_certainty(self):
        perfect = build_firing_squad(loss=0)
        assert achieved_probability(perfect, ALICE, both_fire(), FIRE) == 1

    def test_success_is_one_minus_loss_squared(self):
        for loss in ("0.2", "0.5"):
            system = build_firing_squad(loss=loss)
            achieved = achieved_probability(system, ALICE, both_fire(), FIRE)
            loss_fraction = Fraction(loss)
            assert achieved == 1 - loss_fraction * loss_fraction

    def test_go_probability_does_not_affect_conditional(self):
        for go_probability in ("1/4", "3/4", 1):
            system = build_firing_squad(go_probability=go_probability)
            assert achieved_probability(
                system, ALICE, both_fire(), FIRE
            ) == Fraction(99, 100)

    def test_full_pak_report_consistent(self, firing_squad):
        report = analyze(firing_squad, ALICE, FIRE, both_fire(), THRESHOLD)
        assert report.satisfied
        assert report.all_theorems_verified
