"""Independent hand-derived values, cross-checking the exact engine.

Every test here asserts a quantity derived by hand (Bayes/total
probability on paper) against the library's computation, on a different
code path than the paper-number tests.  A disagreement would indicate a
modelling bug rather than an arithmetic one.
"""

from fractions import Fraction

from repro import (
    achieved_probability,
    belief,
    belief_profile,
    eventually,
    probability,
    runs_satisfying,
)
from repro.apps.coordinated_attack import (
    ATTACK,
    GENERAL_A,
    both_attack,
    build_coordinated_attack,
)
from repro.apps.firing_squad import ALICE, BOB, FIRE, build_firing_squad, fire_bob
from repro.apps.judge import CONVICT, JUDGE, build_judge, guilty
from repro.apps.mutex import ENTER, PROC_1, PROC_2, build_mutex, peer_stays_out


class TestFiringSquadByHand:
    def test_unconditional_both_fire_mass(self, firing_squad):
        # P(go=1) * P(Bob gets >= 1 message) = 1/2 * 99/100.
        both = eventually(fire_bob())
        assert probability(
            firing_squad, runs_satisfying(firing_squad, both)
        ) == Fraction(99, 200)

    def test_bob_yes_message_mass(self, firing_squad):
        # Yes delivered to Alice: 1/2 * 99/100 * 9/10 = 891/2000.
        def got_yes(run):
            return any(
                m.content == "Yes" for m in run.local(ALICE, 2)[1].received(1)
            )

        from repro.core.measure import event_where

        assert probability(
            firing_squad, event_where(firing_squad, got_yes)
        ) == Fraction(891, 2000)

    def test_alice_prior_belief_at_time_zero(self, firing_squad):
        # At (0, go=1) Alice's belief that Bob will fire is P(>=1 of 2
        # messages delivered) = 1 - 1/100.
        will_fire = eventually(fire_bob())
        go_one_state = next(
            run.local(ALICE, 0)
            for run in firing_squad.runs
            if run.local(ALICE, 0)[1].payload == 1
        )
        assert belief(firing_squad, ALICE, will_fire, go_one_state) == Fraction(
            99, 100
        )


class TestMutexByHand:
    def test_exclusion_quality_derivation(self):
        # w = 1/2, loss l = 1/10.  p1 enters iff it wants and hears no
        # request: P(enter1) = w*(1-w) + w*w*l = 1/4 + 1/40 = 11/40.
        # Peer enters alongside iff both want and both requests lost:
        # P(enter1 & enter2) = w^2 l^2 = 1/400.
        # mu(peer out | enter1) = 1 - (1/400)/(11/40) = 1 - 1/110.
        system = build_mutex(contention="1/2", loss="0.1")
        from repro.core.actions import performing_runs

        entering = performing_runs(system, PROC_1, ENTER)
        assert probability(system, entering) == Fraction(11, 40)
        assert achieved_probability(
            system, PROC_1, peer_stays_out(PROC_1), ENTER
        ) == 1 - Fraction(1, 110)

    def test_lonely_contender_always_safe(self):
        # With contention 1 and loss 0 nobody ever enters (requests
        # always heard), so entering is improper — check the boundary
        # below it instead: loss 1 means requests never arrive and both
        # always enter; exclusion quality is 0.
        system = build_mutex(contention=1, loss=1)
        assert achieved_probability(
            system, PROC_1, peer_stays_out(PROC_1), ENTER
        ) == 0


class TestJudgeByHand:
    def test_two_of_two_posterior(self):
        # prior g = 1/2, accuracy a = 9/10, two guilty signals:
        # posterior = a^2 / (a^2 + (1-a)^2) = 81/82.
        system = build_judge(signals=2, conviction_threshold=2)
        assert achieved_probability(
            system, JUDGE, guilty(), CONVICT
        ) == Fraction(81, 82)

    def test_skewed_prior_posterior(self):
        # g = 1/10: posterior = (g a) / (g a + (1-g)(1-a)) for one
        # signal = (9/100) / (9/100 + 9/100) = 1/2.
        system = build_judge(
            guilt_prior="1/10", signal_accuracy="0.9", signals=1, conviction_threshold=1
        )
        assert achieved_probability(
            system, JUDGE, guilty(), CONVICT
        ) == Fraction(1, 2)

    def test_majority_of_three_posterior(self):
        # Convicting on >= 2 of 3: P(G=1 | conviction) =
        # [a^3 + 3 a^2 (1-a)] / [a^3 + 3a^2(1-a) + (1-a)^3 + 3(1-a)^2 a]
        # with a = 9/10 and prior 1/2 = (729 + 243) / (972 + 28) = 972/1000.
        system = build_judge(signals=3, conviction_threshold=2)
        assert achieved_probability(
            system, JUDGE, guilty(), CONVICT
        ) == Fraction(972, 1000)


class TestCoordinatedAttackByHand:
    def test_one_ack_no_ack_posterior(self):
        # Given A ordered and no ack arrives: B attacked but ack lost
        # (9/10 * 1/10) or B never got the order (1/10).  Belief that
        # both will attack = (9/100) / (9/100 + 10/100) = 9/19.
        system = build_coordinated_attack(loss="0.1", ack_rounds=1)
        profile = belief_profile(system, GENERAL_A, both_attack())
        # find A's attack-time state with no ack and order=1
        values = set()
        for local, value in profile.items():
            t, state = local
            if t == 2 and state.payload == 1 and not state.received(1):
                values.add(value)
        assert values == {Fraction(9, 19)}

    def test_b_posterior_after_order(self):
        # B, having received the order, is certain A will attack.
        from repro.apps.coordinated_attack import attack_a, GENERAL_B

        system = build_coordinated_attack(loss="0.1", ack_rounds=0)
        profile = belief_profile(system, GENERAL_B, eventually(attack_a()))
        got_order = [
            value
            for (t, state), value in profile.items()
            if t == 1 and state.received(0)
        ]
        assert got_order and all(value == 1 for value in got_order)
