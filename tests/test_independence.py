"""Unit tests for local-state independence and past-based facts (Section 4)."""

from fractions import Fraction

from repro import (
    TRUE,
    does_,
    env_fact,
    eventually,
    independence_report,
    is_local_state_independent,
    is_past_based,
    is_run_based,
    lemma_4_3_applies,
    performed,
    state_fact,
)
from repro.apps.figure1 import phi_alpha, psi_not_alpha


class TestPastBased:
    def test_state_facts_are_past_based(self, two_coin_tree):
        fact = state_fact(lambda g: g.env == ("second", "h"))
        assert is_past_based(two_coin_tree, fact)

    def test_future_dependent_fact_is_not_past_based(self, two_coin_tree):
        # "the second coin will land heads" depends on the future.
        future = eventually(env_fact(lambda e: e == ("second", "h")))
        assert not is_past_based(two_coin_tree, future)

    def test_does_fact_is_not_past_based_under_mixing(self, figure1):
        # In Figure 1, does(alpha) at time 0 differs across runs sharing
        # the time-0 node.
        assert not is_past_based(figure1, does_("i", "alpha"))

    def test_true_is_past_based(self, two_coin_tree):
        assert is_past_based(two_coin_tree, TRUE)


class TestRunBased:
    def test_structural_run_fact_is_run_based(self, two_coin_tree):
        assert is_run_based(two_coin_tree, performed("obs", "observe"))

    def test_transient_fact_usually_is_not(self, two_coin_tree):
        changes = env_fact(lambda e: e == ("second", "h"))
        assert not is_run_based(two_coin_tree, changes)

    def test_constant_transient_fact_is_semantically_run_based(self, two_coin_tree):
        assert is_run_based(two_coin_tree, TRUE)


class TestIndependence:
    def test_figure1_psi_dependent(self, figure1):
        assert not is_local_state_independent(figure1, psi_not_alpha(), "i", "alpha")

    def test_figure1_phi_dependent(self, figure1):
        assert not is_local_state_independent(figure1, phi_alpha(), "i", "alpha")

    def test_past_based_fact_independent_of_mixed_action(self, figure1):
        # Lemma 4.3(b): even alpha's own mixing cannot break a
        # past-based condition.
        initial = state_fact(lambda g: True, label="always")
        assert is_local_state_independent(figure1, initial, "i", "alpha")

    def test_deterministic_action_independent_of_anything(self, two_coin_tree):
        future = eventually(env_fact(lambda e: e == ("second", "h")))
        assert is_local_state_independent(two_coin_tree, future, "obs", "observe")

    def test_report_contents_figure1(self, figure1):
        report = independence_report(figure1, psi_not_alpha(), "i", "alpha")
        witness = report[(0, "g0")]
        assert witness.prob_phi == Fraction(1, 2)
        assert witness.prob_action == Fraction(1, 2)
        assert witness.prob_joint == 0  # psi and alpha never co-occur
        assert not witness.independent

    def test_report_trivial_at_non_acting_states(self, figure1):
        report = independence_report(figure1, psi_not_alpha(), "i", "alpha")
        terminal = report[(1, "g1")]
        assert terminal.prob_action == 0
        assert terminal.independent


class TestLemma43Helper:
    def test_reports_deterministic_reason(self, two_coin_tree):
        applies, reasons = lemma_4_3_applies(
            two_coin_tree, eventually(TRUE), "obs", "observe"
        )
        assert applies and "deterministic-action" in reasons

    def test_reports_past_based_reason(self, figure1):
        fact = state_fact(lambda g: True)
        applies, reasons = lemma_4_3_applies(figure1, fact, "i", "alpha")
        assert applies and "past-based-fact" in reasons

    def test_neither_reason(self, figure1):
        applies, reasons = lemma_4_3_applies(
            figure1, psi_not_alpha(), "i", "alpha"
        )
        assert not applies and reasons == []
