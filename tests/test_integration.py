"""Cross-module integration tests.

These tie the layers together: protocols compiled to systems, analyzed
by the core, cross-validated by Monte Carlo, transformed by strategies,
queried through the logic layer.
"""

from fractions import Fraction

from repro import (
    achieved_probability,
    analyze,
    eventually,
    expected_belief,
    pak_level,
    threshold_met_measure,
)
from repro.analysis import (
    estimate_achieved,
    estimate_expected_belief,
    verify_system,
)
from repro.apps.coordinated_attack import (
    ATTACK,
    GENERAL_A,
    both_attack,
    build_coordinated_attack,
)
from repro.apps.firing_squad import (
    ALICE,
    FIRE,
    both_fire,
    build_firing_squad,
    fire_bob,
)
from repro.apps.judge import CONVICT, JUDGE, build_judge, guilty
from repro.apps.mutex import ENTER, PROC_1, build_mutex, peer_stays_out
from repro.apps.theorem52 import AGENT_I, ALPHA, bit_is_one, build_theorem52
from repro.logic import valid
from repro.protocols import refrain_below_threshold


class TestEveryAppSatisfiesTheTheorems:
    def test_firing_squad(self, firing_squad):
        verification = verify_system(
            firing_squad,
            {"both": both_fire()},
            agents=[ALICE],
            thresholds=("0.95",),
        )
        assert verification.all_verified

    def test_theorem52(self, theorem52):
        verification = verify_system(
            theorem52, {"bit": bit_is_one()}, thresholds=("0.9", "1/2")
        )
        assert verification.all_verified

    def test_mutex(self):
        system = build_mutex()
        verification = verify_system(
            system,
            {"peer-out": peer_stays_out(PROC_1)},
            agents=[PROC_1],
            thresholds=("0.9",),
        )
        assert verification.all_verified

    def test_judge(self):
        system = build_judge(signals=2, conviction_threshold=2)
        verification = verify_system(
            system, {"guilty": guilty()}, agents=[JUDGE], thresholds=("0.9",)
        )
        assert verification.all_verified

    def test_coordinated_attack(self):
        system = build_coordinated_attack(ack_rounds=1)
        verification = verify_system(
            system,
            {"both": both_attack()},
            agents=[GENERAL_A],
            thresholds=("0.9",),
        )
        assert verification.all_verified


class TestMonteCarloAgreesEverywhere:
    def test_coordinated_attack_estimates(self):
        system = build_coordinated_attack(ack_rounds=1)
        exact = achieved_probability(system, GENERAL_A, both_attack(), ATTACK)
        estimate = estimate_achieved(
            system, GENERAL_A, both_attack(), ATTACK, samples=3000, seed=11
        )
        assert estimate.consistent_with(float(exact))

    def test_judge_expected_belief_estimate(self):
        system = build_judge(signals=2, conviction_threshold=2)
        exact = expected_belief(system, JUDGE, guilty(), CONVICT)
        estimate = estimate_expected_belief(
            system, JUDGE, guilty(), CONVICT, samples=3000, seed=12
        )
        assert estimate.consistent_with(float(exact))


class TestSectionEightWorkflow:
    """The paper's design insight, end to end."""

    def test_refrain_transform_improves_every_lossy_variant(self):
        for loss in ("0.05", "0.1", "0.25"):
            base = build_firing_squad(loss=loss)
            improved = refrain_below_threshold(base, ALICE, FIRE, both_fire(), "0.95")
            assert achieved_probability(
                improved, ALICE, both_fire(), FIRE
            ) >= achieved_probability(base, ALICE, both_fire(), FIRE)

    def test_transform_never_decreases_expected_belief(self):
        base = build_firing_squad()
        improved = refrain_below_threshold(base, ALICE, FIRE, both_fire(), "0.95")
        assert expected_belief(
            improved, ALICE, both_fire(), FIRE
        ) >= expected_belief(base, ALICE, both_fire(), FIRE)


class TestPakTradeoffAcrossApps:
    def test_pak_reading_of_each_system(self):
        cases = [
            (build_firing_squad(), ALICE, FIRE, both_fire()),
            (build_theorem52("0.9", "0.1"), AGENT_I, ALPHA, bit_is_one()),
            (build_judge(signals=2, conviction_threshold=2), JUDGE, CONVICT, guilty()),
        ]
        for system, agent, action, phi in cases:
            achieved = achieved_probability(system, agent, phi, action)
            level = pak_level(achieved)
            met = threshold_met_measure(system, agent, phi, action, level)
            # Corollary 7.2 with the achieved probability as threshold.
            assert met >= level

    def test_analyze_is_consistent_with_manual_queries(self, firing_squad):
        report = analyze(firing_squad, ALICE, FIRE, both_fire(), "0.95")
        assert report.achieved == achieved_probability(
            firing_squad, ALICE, both_fire(), FIRE
        )
        assert report.threshold_met_measure == threshold_met_measure(
            firing_squad, ALICE, both_fire(), FIRE, "0.95"
        )


class TestLogicOverCompiledSystems:
    def test_improved_protocol_validates_threshold_formula(self):
        improved = build_firing_squad(improved=True)
        valuation = {"fire_b": fire_bob()}
        # In FS' Alice only fires while her belief is at least 0.95 —
        # the very formula that FS violates.
        assert valid(
            improved,
            "does[alice](fire) -> B[alice]>=0.95 fire_b",
            valuation,
        )

    def test_original_protocol_fails_the_same_formula(self, firing_squad):
        valuation = {"fire_b": fire_bob()}
        assert not valid(
            firing_squad,
            "does[alice](fire) -> B[alice]>=0.95 fire_b",
            valuation,
        )


class TestRunFactVsTransientFormulations:
    def test_run_based_condition_simplification(self, firing_squad):
        # For a fact about runs, mu(psi@alpha | alpha) == mu(psi | alpha)
        # (the paper's remark after Definition 3.2).
        from repro import performed, runs_satisfying
        from repro.core.actions import performing_runs
        from repro.core.measure import conditional

        psi = eventually(both_fire())  # a fact about runs
        at_action_value = achieved_probability(firing_squad, ALICE, psi, FIRE)
        direct = conditional(
            firing_squad,
            runs_satisfying(firing_squad, psi),
            performing_runs(firing_squad, ALICE, FIRE),
        )
        assert at_action_value == direct
