"""Integration tests for the judge (beyond reasonable doubt)."""

from fractions import Fraction

import pytest

from repro import (
    achieved_probability,
    analyze,
    belief_profile,
    expected_belief,
    is_proper,
)
from repro.apps.judge import (
    ACQUIT,
    CONVICT,
    JUDGE,
    build_judge,
    convicts,
    guilty,
)


class TestConvictionQuality:
    def test_unanimous_three_signals(self):
        system = build_judge(signals=3, conviction_threshold=3)
        # P(G=1 | three guilty signals) with prior 1/2 and accuracy 0.9:
        # 0.9^3 / (0.9^3 + 0.1^3) = 729/730.
        assert achieved_probability(
            system, JUDGE, guilty(), CONVICT
        ) == Fraction(729, 730)

    def test_majority_rule_is_weaker(self):
        unanimous = build_judge(signals=3, conviction_threshold=3)
        majority = build_judge(signals=3, conviction_threshold=2)
        assert achieved_probability(
            majority, JUDGE, guilty(), CONVICT
        ) < achieved_probability(unanimous, JUDGE, guilty(), CONVICT)

    def test_single_signal(self):
        system = build_judge(signals=1, conviction_threshold=1)
        assert achieved_probability(
            system, JUDGE, guilty(), CONVICT
        ) == Fraction(9, 10)

    def test_prior_matters(self):
        sceptical = build_judge(guilt_prior="1/10", signals=2, conviction_threshold=2)
        credulous = build_judge(guilt_prior="9/10", signals=2, conviction_threshold=2)
        assert achieved_probability(
            sceptical, JUDGE, guilty(), CONVICT
        ) < achieved_probability(credulous, JUDGE, guilty(), CONVICT)

    def test_acquittal_mirrors_conviction(self):
        system = build_judge(signals=3, conviction_threshold=3)
        innocent_given_acquit = achieved_probability(
            system, JUDGE, ~guilty(), ACQUIT
        )
        # Acquittal on any non-unanimous evidence is much less reliable
        # than unanimous conviction.
        assert innocent_given_acquit < Fraction(729, 730)


class TestJudgeBeliefs:
    def test_belief_equals_bayesian_posterior(self):
        system = build_judge(signals=2, conviction_threshold=2)
        profile = belief_profile(system, JUDGE, guilty())
        # The time-2 state with two guilty signals has posterior
        # 0.81 / (0.81 + 0.01) = 81/82.
        values = set(profile.values())
        assert Fraction(81, 82) in values

    def test_expectation_identity(self):
        system = build_judge(signals=3, conviction_threshold=2)
        assert expected_belief(
            system, JUDGE, guilty(), CONVICT
        ) == achieved_probability(system, JUDGE, guilty(), CONVICT)

    def test_full_pak_report(self):
        system = build_judge(signals=3, conviction_threshold=3)
        report = analyze(system, JUDGE, CONVICT, guilty(), "0.99")
        assert report.satisfied
        assert report.all_theorems_verified
        # Convicting unanimously, the judge's belief is always 729/730.
        assert all(
            cell.belief == Fraction(729, 730)
            for cell in report.belief_profile.values()
        )


class TestValidation:
    def test_convict_proper_when_reachable(self):
        system = build_judge(signals=2, conviction_threshold=2)
        assert is_proper(system, JUDGE, CONVICT)

    def test_zero_signals_rejected(self):
        with pytest.raises(ValueError):
            build_judge(signals=0)

    def test_threshold_above_signals_rejected(self):
        with pytest.raises(ValueError):
            build_judge(signals=2, conviction_threshold=3)

    def test_certain_prior_degenerates(self):
        system = build_judge(guilt_prior=1, signals=1, conviction_threshold=1)
        assert achieved_probability(system, JUDGE, guilty(), CONVICT) == 1
