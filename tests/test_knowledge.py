"""Unit tests for classical knowledge operators K_i, E_G, C_G."""

from repro import (
    TRUE,
    common_knowledge,
    env_fact,
    eventually,
    everyone_knows,
    indistinguishable_points,
    knowledge_partition,
    knows,
    local_fact,
    points_satisfying,
)
from repro.apps.firing_squad import ALICE, BOB, fire_bob


class TestIndistinguishability:
    def test_reflexive(self, two_coin_tree):
        run = two_coin_tree.runs[0]
        points = indistinguishable_points(two_coin_tree, "obs", run, 0)
        assert (run.index, 0) in points

    def test_obs_distinguishes_first_coin(self, two_coin_tree):
        heads_run = next(
            r for r in two_coin_tree.runs if r.local("obs", 0) == (0, "H")
        )
        points = indistinguishable_points(two_coin_tree, "obs", heads_run, 0)
        assert len(points) == 2  # the two heads runs only

    def test_blind_conflates_everything(self, two_coin_tree):
        run = two_coin_tree.runs[0]
        points = indistinguishable_points(two_coin_tree, "blind", run, 0)
        assert len(points) == 4

    def test_partition_cells(self, two_coin_tree):
        cells = knowledge_partition(two_coin_tree, "obs", 0)
        assert set(cells) == {(0, "H"), (0, "T")}
        assert all(len(indices) == 2 for indices in cells.values())


class TestKnows:
    def test_knows_own_state_fact(self, two_coin_tree):
        saw_heads = local_fact("obs", lambda l: l[1] == "H")
        k = knows("obs", saw_heads)
        points = points_satisfying(two_coin_tree, k)
        # true at every point of the two heads runs
        assert len(points) == 4

    def test_blind_does_not_know(self, two_coin_tree):
        saw_heads = local_fact("obs", lambda l: l[1] == "H")
        k = knows("blind", saw_heads)
        assert points_satisfying(two_coin_tree, k) == set()

    def test_knowledge_implies_truth(self, two_coin_tree):
        second = env_fact(lambda e: e == ("second", "h"))
        k = knows("obs", second)
        truth = points_satisfying(two_coin_tree, second)
        assert points_satisfying(two_coin_tree, k) <= truth

    def test_everyone_knows_true(self, two_coin_tree):
        e = everyone_knows(["obs", "blind"], TRUE)
        assert len(points_satisfying(two_coin_tree, e)) == 8

    def test_alice_never_knows_bob_fires_before_yes(self, firing_squad):
        # At time 0 Alice cannot know that Bob will fire.
        will_fire = eventually(fire_bob())
        k = knows(ALICE, will_fire)
        assert all(t != 0 for _, t in points_satisfying(firing_squad, k))


class TestCommonKnowledge:
    def test_common_knowledge_of_true(self, two_coin_tree):
        c = common_knowledge(["obs", "blind"], TRUE)
        assert len(points_satisfying(two_coin_tree, c)) == 8

    def test_no_common_knowledge_of_first_coin(self, two_coin_tree):
        # blind links the heads and tails components, destroying common
        # knowledge of anything that differs across them.
        saw_heads = local_fact("obs", lambda l: l[1] == "H")
        c = common_knowledge(["obs", "blind"], saw_heads)
        assert points_satisfying(two_coin_tree, c) == set()

    def test_singleton_group_reduces_to_knowledge(self, two_coin_tree):
        saw_heads = local_fact("obs", lambda l: l[1] == "H")
        c = common_knowledge(["obs"], saw_heads)
        k = knows("obs", saw_heads)
        assert points_satisfying(two_coin_tree, c) == points_satisfying(
            two_coin_tree, k
        )

    def test_firing_squad_never_common_knowledge(self, firing_squad):
        # The classical coordinated-attack fact: whether both will fire
        # never becomes common knowledge over a lossy channel.
        both_eventually = eventually(fire_bob())
        c = common_knowledge([ALICE, BOB], both_eventually)
        assert points_satisfying(firing_squad, c) == set()

    def test_component_cache_reused(self, two_coin_tree):
        from repro import SystemIndex

        c = common_knowledge(["obs", "blind"], TRUE)
        run = two_coin_tree.runs[0]
        assert c.holds(two_coin_tree, run, 0)
        assert c.holds(two_coin_tree, run, 0)  # second call hits the cache
        index = SystemIndex.of(two_coin_tree)
        assert (("obs", "blind"), 0) in index._component_cache
