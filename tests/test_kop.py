"""Unit tests for the classical Knowledge of Preconditions principle."""

import pytest

from repro import (
    FALSE,
    TRUE,
    ImproperActionError,
    check_kop,
    env_fact,
    eventually,
    is_necessary_condition,
    state_fact,
)
from repro.apps.firing_squad import ALICE, FIRE, both_fire, fire_alice
from repro.apps.theorem52 import AGENT_I, ALPHA, bit_is_one


class TestNecessaryCondition:
    def test_true_is_always_necessary(self, firing_squad):
        assert is_necessary_condition(firing_squad, ALICE, FIRE, TRUE)

    def test_both_fire_is_not_necessary_for_fire(self, firing_squad):
        # Alice sometimes fires alone.
        assert not is_necessary_condition(firing_squad, ALICE, FIRE, both_fire())

    def test_own_action_is_necessary(self, firing_squad):
        assert is_necessary_condition(firing_squad, ALICE, FIRE, fire_alice())


class TestCheckKop:
    def test_kop_holds_for_own_state_condition(self, theorem52):
        # "i received some message" is a condition i knows when acting.
        got_message = state_fact(
            lambda g: g.locals[0][1][0] in ("got", "done"), label="received"
        )
        report = check_kop(theorem52, AGENT_I, ALPHA, got_message)
        assert report.necessary
        assert report.known_when_acting
        assert report.belief_one_when_acting
        assert report.verified
        assert report.failures == []

    def test_premise_failure_makes_report_vacuous(self, firing_squad):
        report = check_kop(firing_squad, ALICE, FIRE, both_fire())
        assert not report.necessary
        assert report.verified  # vacuously: KoP says nothing here

    def test_non_necessary_condition_not_known(self, theorem52):
        report = check_kop(theorem52, AGENT_I, ALPHA, bit_is_one())
        assert not report.necessary
        # i does not know the bit when acting (in the m_j runs).
        assert not report.known_when_acting
        assert report.failures

    def test_improper_action_rejected(self, firing_squad):
        with pytest.raises(ImproperActionError):
            check_kop(firing_squad, ALICE, "phantom", TRUE)

    def test_false_condition(self, firing_squad):
        report = check_kop(firing_squad, ALICE, FIRE, FALSE)
        assert not report.necessary
        assert report.verified

    def test_knowledge_and_belief_one_agree(self, theorem52):
        # In a pps (all runs have positive measure) knowledge and
        # belief-1 coincide for every condition at acting points.
        for phi in (TRUE, bit_is_one()):
            report = check_kop(theorem52, AGENT_I, ALPHA, phi)
            assert report.known_when_acting == report.belief_one_when_acting
