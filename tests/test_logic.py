"""Unit tests for the logic layer: syntax, parser, semantics."""

import pytest

from repro import FALSE, FormulaError, TRUE
from repro.apps.firing_squad import ALICE, BOB, FIRE, fire_alice, fire_bob
from repro.logic import (
    Belief,
    Conj,
    DoesF,
    Impl,
    Know,
    Neg,
    Prop,
    Top,
    compile_formula,
    holds_at,
    parse,
    satisfiable,
    satisfying_points,
    valid,
)

VALUATION = {"fire_a": None, "fire_b": None}  # filled in fixture below


@pytest.fixture()
def valuation():
    return {"fire_a": fire_alice(), "fire_b": fire_bob(), "T": TRUE, "F": FALSE}


class TestParser:
    def test_atoms(self):
        assert parse("p") == Prop("p")
        assert parse("true") == Top()

    def test_precedence_and_over_or(self):
        formula = parse("a | b & c")
        assert str(formula) == "(a | (b & c))"

    def test_arrow_right_associative(self):
        formula = parse("a -> b -> c")
        assert str(formula) == "(a -> (b -> c))"

    def test_parentheses(self):
        formula = parse("(a | b) & c")
        assert str(formula) == "((a | b) & c)"

    def test_negation_binds_tightly(self):
        assert str(parse("!a & b")) == "(!a & b)"

    def test_knowledge(self):
        assert parse("K[alice] p") == Know("alice", Prop("p"))

    def test_belief_with_decimal(self):
        formula = parse("B[alice]>=0.9 p")
        assert isinstance(formula, Belief)
        assert float(formula.level) == 0.9

    def test_belief_with_fraction(self):
        formula = parse("B[bob]<1/2 p")
        assert formula.comparison == "<"

    def test_does(self):
        assert parse("does[alice](fire)") == DoesF("alice", "fire")

    def test_nested_modalities(self):
        formula = parse("K[alice] B[bob]>=0.5 p")
        assert isinstance(formula, Know)
        assert isinstance(formula.operand, Belief)

    def test_empty_rejected(self):
        with pytest.raises(FormulaError):
            parse("")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FormulaError):
            parse("p q")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(FormulaError):
            parse("(p & q")

    def test_bad_character_rejected(self):
        with pytest.raises(FormulaError):
            parse("p @ q")


class TestCompilation:
    def test_missing_proposition(self, firing_squad, valuation):
        with pytest.raises(FormulaError):
            compile_formula("unknown_prop", valuation).holds(
                firing_squad, firing_squad.runs[0], 0
            )

    def test_operator_sugar_on_ast(self):
        formula = (Prop("a") & Prop("b")) | ~Prop("c")
        assert str(formula) == "((a & b) | !c)"

    def test_implies_sugar(self):
        assert str(Prop("a").implies(Prop("b"))) == "(a -> b)"

    def test_invalid_comparison_rejected(self):
        with pytest.raises(FormulaError):
            Belief("a", "!=", "1/2", Top())


class TestSemantics:
    def test_constants(self, firing_squad, valuation):
        assert valid(firing_squad, "true", valuation)
        assert not satisfiable(firing_squad, "false", valuation)

    def test_does_matches_core_fact(self, firing_squad, valuation):
        from repro import points_satisfying

        core = points_satisfying(firing_squad, fire_alice())
        logical = satisfying_points(firing_squad, "does[alice](fire)", valuation)
        assert core == logical

    def test_firing_implication_not_valid(self, firing_squad, valuation):
        # Alice sometimes fires while believing Bob is not firing.
        assert not valid(
            firing_squad, "does[alice](fire) -> B[alice]>=0.95 fire_b", valuation
        )

    def test_knowledge_implies_belief_one(self, firing_squad, valuation):
        assert valid(
            firing_squad, "K[alice] fire_b -> B[alice]>=1 fire_b", valuation
        )

    def test_belief_one_implies_knowledge(self, firing_squad, valuation):
        # In a pps all runs have positive measure, so the converse
        # holds as well.
        assert valid(
            firing_squad, "B[alice]>=1 fire_b -> K[alice] fire_b", valuation
        )

    def test_holds_at_specific_point(self, firing_squad, valuation):
        run = next(r for r in firing_squad.runs if r.performs(ALICE, FIRE))
        assert holds_at(firing_squad, "does[alice](fire)", valuation, run, 2)
        assert not holds_at(firing_squad, "does[alice](fire)", valuation, run, 0)

    def test_strict_comparison(self, firing_squad, valuation):
        # B > 0.99 excludes the belief-0.99 information state.
        lenient = satisfying_points(
            firing_squad, "B[alice]>=0.99 fire_b", valuation
        )
        strict = satisfying_points(
            firing_squad, "B[alice]>0.99 fire_b", valuation
        )
        assert strict < lenient
