"""Unit tests for the run-event algebra and the measure mu_T."""

from fractions import Fraction

import pytest

from repro import ConditioningOnNullEventError
from repro.core.measure import (
    all_runs,
    complement,
    conditional,
    empty_event,
    event_where,
    expectation,
    intersect,
    is_partition,
    probability,
    total_probability,
    union,
)


class TestEvents:
    def test_all_runs(self, two_coin_tree):
        assert all_runs(two_coin_tree) == {0, 1, 2, 3}

    def test_event_where(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        assert len(heads) == 2

    def test_complement(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        assert complement(two_coin_tree, heads) | heads == all_runs(two_coin_tree)
        assert complement(two_coin_tree, heads) & heads == frozenset()

    def test_intersect_and_union(self):
        a, b = frozenset({1, 2}), frozenset({2, 3})
        assert intersect(a, b) == {2}
        assert union(a, b) == {1, 2, 3}

    def test_intersect_requires_arguments(self):
        with pytest.raises(ValueError):
            intersect()

    def test_union_of_nothing_is_empty(self):
        assert union() == frozenset()


class TestProbability:
    def test_total_mass_is_one(self, two_coin_tree):
        assert probability(two_coin_tree, all_runs(two_coin_tree)) == 1

    def test_empty_event_has_zero_mass(self, two_coin_tree):
        assert probability(two_coin_tree, empty_event()) == 0

    def test_event_mass(self, two_coin_tree):
        second_heads = event_where(
            two_coin_tree, lambda run: run.env_state(1) == ("second", "h")
        )
        assert probability(two_coin_tree, second_heads) == Fraction(1, 3)

    def test_additivity(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        tails = complement(two_coin_tree, heads)
        assert probability(two_coin_tree, heads) + probability(
            two_coin_tree, tails
        ) == 1


class TestConditional:
    def test_basic_conditioning(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        second = event_where(
            two_coin_tree, lambda run: run.env_state(1) == ("second", "h")
        )
        # The coins are independent.
        assert conditional(two_coin_tree, second, heads) == Fraction(1, 3)

    def test_conditioning_on_null_event_raises(self, two_coin_tree):
        with pytest.raises(ConditioningOnNullEventError):
            conditional(two_coin_tree, all_runs(two_coin_tree), empty_event())

    def test_conditional_of_subset_is_ratio(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        sub = frozenset(list(heads)[:1])
        expected = probability(two_coin_tree, sub) / probability(
            two_coin_tree, heads
        )
        assert conditional(two_coin_tree, sub, heads) == expected


class TestExpectation:
    def test_constant_variable(self, two_coin_tree):
        assert expectation(two_coin_tree, lambda run: Fraction(1, 3)) == Fraction(1, 3)

    def test_indicator_equals_probability(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        indicator = lambda run: Fraction(1 if run.index in heads else 0)
        assert expectation(two_coin_tree, indicator) == probability(
            two_coin_tree, heads
        )

    def test_conditional_expectation(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        one = lambda run: Fraction(1)
        assert expectation(two_coin_tree, one, given=heads) == 1

    def test_empty_conditioning_raises(self, two_coin_tree):
        with pytest.raises(ConditioningOnNullEventError):
            expectation(two_coin_tree, lambda run: Fraction(0), given=empty_event())


class TestPartitions:
    def test_is_partition_true(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        tails = complement(two_coin_tree, heads)
        assert is_partition(two_coin_tree, [heads, tails], all_runs(two_coin_tree))

    def test_is_partition_rejects_overlap(self, two_coin_tree):
        everything = all_runs(two_coin_tree)
        assert not is_partition(two_coin_tree, [everything, everything], everything)

    def test_is_partition_rejects_empty_cell(self, two_coin_tree):
        everything = all_runs(two_coin_tree)
        assert not is_partition(
            two_coin_tree, [everything, empty_event()], everything
        )

    def test_is_partition_rejects_undercover(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        assert not is_partition(two_coin_tree, [heads], all_runs(two_coin_tree))

    def test_total_probability_agrees_with_direct(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        tails = complement(two_coin_tree, heads)
        second = event_where(
            two_coin_tree, lambda run: run.env_state(1) == ("second", "h")
        )
        via_partition = total_probability(two_coin_tree, second, [heads, tails])
        assert via_partition == probability(two_coin_tree, second)

    def test_total_probability_rejects_non_partition(self, two_coin_tree):
        heads = event_where(
            two_coin_tree, lambda run: run.local("obs", 0) == (0, "H")
        )
        with pytest.raises(ValueError):
            total_probability(two_coin_tree, heads, [heads])
