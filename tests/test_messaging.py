"""Unit tests for the message-passing substrate."""

from fractions import Fraction

import pytest

from repro import CompilationError
from repro.messaging import (
    FunctionChannel,
    FunctionRoundProtocol,
    LossyChannel,
    Message,
    MessagePassingSystem,
    Move,
    RecordingState,
    ReliableChannel,
    SKIP,
)
from repro.protocols import Distribution
from repro.protocols.compiler import ENV


class TestMessage:
    def test_immutability(self):
        message = Message("a", "b", "hello")
        with pytest.raises(Exception):
            message.content = "tampered"  # type: ignore[misc]

    def test_str(self):
        assert str(Message("a", "b", "x")) == "a->b:'x'"


class TestMove:
    def test_default_is_skip(self):
        assert Move().action == SKIP
        assert Move().sends == ()

    def test_sending_constructor(self):
        move = Move.sending(Message("a", "b", 1), Message("a", "b", 2))
        assert len(move.sends) == 2

    def test_acting_constructor(self):
        assert Move.acting("fire").action == "fire"


class TestChannels:
    def test_lossy_delivery_probability(self):
        channel = LossyChannel("0.1")
        assert channel.delivery_probability(Message("a", "b", 1)) == Fraction(9, 10)

    def test_reliable(self):
        assert ReliableChannel().delivery_probability(Message("a", "b", 1)) == 1

    def test_function_channel(self):
        channel = FunctionChannel(
            lambda message: "1/2" if message.content == "weak" else 1
        )
        assert channel.delivery_probability(Message("a", "b", "weak")) == Fraction(
            1, 2
        )
        assert channel.delivery_probability(Message("a", "b", "strong")) == 1

    def test_lossy_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LossyChannel("3/2")


class TestRecordingState:
    def test_observe_appends(self):
        state = RecordingState("payload")
        message = Message("x", "y", "m")
        nxt = state.observe("acted", (message,))
        assert nxt.rounds_elapsed == 1
        assert nxt.received(0) == (message,)
        assert nxt.received_contents(0) == ("m",)

    def test_immutable_history(self):
        state = RecordingState("p").observe("a", ())
        again = state.observe("b", ())
        assert state.rounds_elapsed == 1
        assert again.rounds_elapsed == 2

    def test_hashable(self):
        assert hash(RecordingState("p")) == hash(RecordingState("p"))


def ping_system(channel=None, horizon=1) -> MessagePassingSystem:
    """One sender pings one receiver once."""

    def sender_step(local):
        if local == "fresh":
            return Move.sending(Message("s", "r", "ping"))
        return Move()

    def sender_update(local, move, delivered):
        return "done"

    def receiver_step(local):
        return Move()

    def receiver_update(local, move, delivered):
        return ("heard",) if delivered else ("silence",)

    return MessagePassingSystem(
        agents=["s", "r"],
        protocols={
            "s": FunctionRoundProtocol(sender_step, sender_update),
            "r": FunctionRoundProtocol(receiver_step, receiver_update),
        },
        channel=channel or LossyChannel("1/4"),
        initial=Distribution.point(("fresh", ("empty",))),
        horizon=horizon,
        name="ping",
    )


class TestMessagePassingCompilation:
    def test_loss_branches(self):
        pps = ping_system().compile()
        assert pps.run_count() == 2
        probs = sorted(run.prob for run in pps.runs)
        assert probs == [Fraction(1, 4), Fraction(3, 4)]

    def test_reliable_channel_single_branch(self):
        pps = ping_system(channel=ReliableChannel()).compile()
        assert pps.run_count() == 1

    def test_receiver_state_reflects_delivery(self):
        pps = ping_system().compile()
        finals = {run.local("r", 1)[1] for run in pps.runs}
        assert finals == {("heard",), ("silence",)}

    def test_delivery_pattern_recorded_on_edges(self):
        pps = ping_system().compile()
        patterns = {run.nodes[1].via_action[ENV] for run in pps.runs}
        assert patterns == {(True,), (False,)}

    def test_pattern_recording_can_be_disabled(self):
        system = ping_system()
        system.record_delivery_pattern = False
        pps = system.compile()
        assert all(ENV not in run.nodes[1].via_action for run in pps.runs)

    def test_time_stamps(self):
        pps = ping_system().compile()
        for run in pps.runs:
            for t in run.times():
                assert run.local("s", t)[0] == t

    def test_unknown_recipient_rejected(self):
        def bad_step(local):
            return Move.sending(Message("s", "nobody", "lost"))

        system = MessagePassingSystem(
            agents=["s"],
            protocols={
                "s": FunctionRoundProtocol(bad_step, lambda l, m, d: "done")
            },
            channel=ReliableChannel(),
            initial=Distribution.point(("fresh",)),
            horizon=1,
        )
        with pytest.raises(CompilationError):
            system.compile()

    def test_missing_protocol_rejected(self):
        with pytest.raises(CompilationError):
            MessagePassingSystem(
                agents=["s", "r"],
                protocols={},
                channel=ReliableChannel(),
                initial=Distribution.point(("a", "b")),
                horizon=1,
            )

    def test_mixed_move_branches(self):
        def mixed_step(local):
            if local != "fresh":
                return Move()
            return Distribution(
                {
                    Move.acting("left"): "1/3",
                    Move.acting("right"): "2/3",
                }
            )

        system = MessagePassingSystem(
            agents=["s"],
            protocols={
                "s": FunctionRoundProtocol(mixed_step, lambda l, m, d: "done")
            },
            channel=ReliableChannel(),
            initial=Distribution.point(("fresh",)),
            horizon=1,
        )
        pps = system.compile()
        assert pps.run_count() == 2
        left = next(r for r in pps.runs if r.performs("s", "left"))
        assert left.prob == Fraction(1, 3)
