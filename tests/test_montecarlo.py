"""Monte-Carlo estimators must converge to the exact quantities."""

from fractions import Fraction

import pytest

from repro import ConditioningOnNullEventError, achieved_probability, expected_belief
from repro.analysis import (
    RunSampler,
    estimate_achieved,
    estimate_conditional,
    estimate_expected_belief,
    estimate_probability,
    estimate_threshold_met,
)
from repro.apps.firing_squad import ALICE, FIRE, THRESHOLD, both_fire

SAMPLES = 4000


class TestSampler:
    def test_reproducible(self, firing_squad):
        a = RunSampler(firing_squad, seed=42).sample_runs(50)
        b = RunSampler(firing_squad, seed=42).sample_runs(50)
        assert [r.index for r in a] == [r.index for r in b]

    def test_different_seeds_differ(self, firing_squad):
        a = RunSampler(firing_squad, seed=1).sample_runs(50)
        b = RunSampler(firing_squad, seed=2).sample_runs(50)
        assert [r.index for r in a] != [r.index for r in b]

    def test_samples_are_actual_runs(self, firing_squad):
        for run in RunSampler(firing_squad, seed=0).sample_runs(20):
            assert firing_squad.runs[run.index] is run

    def test_frequencies_match_measure(self, firing_squad):
        sampler = RunSampler(firing_squad, seed=3)
        counts = {}
        n = 20000
        for run in sampler.sample_runs(n):
            counts[run.index] = counts.get(run.index, 0) + 1
        for run in firing_squad.runs:
            expected = float(run.prob)
            observed = counts.get(run.index, 0) / n
            assert abs(observed - expected) < 0.02


class TestExactChildChoice:
    """Regression: child selection must use exact cumulative weights.

    The seed implementation accumulated ``float(prob_from_parent)`` and
    fell back to the last child on round-off.  With probabilities that
    do not round-trip through float (thirds, tenths), the float
    cumulative sums drift off the exact cell boundaries; the sampler
    must place boundary draws by exact ``Fraction`` comparison.
    """

    @staticmethod
    def _uniform_tree(n_children):
        from repro import PPSBuilder

        builder = PPSBuilder(["a"], name=f"uniform-{n_children}")
        for k in range(n_children):
            builder.initial(Fraction(1, n_children), {"a": (0, k)})
        return builder.build()

    @staticmethod
    def _forced(sampler, pick):
        sampler._rng = type("Stub", (), {"random": staticmethod(lambda: pick)})()
        return sampler.sample_run()

    def test_boundary_draw_lands_in_exact_cell(self):
        # float(1/3) < 1/3, so the draw 0.3333333333333333 lies in the
        # *first* third exactly; the old float accumulation assigned it
        # to the second child.
        from repro.analysis import RunSampler

        system = self._uniform_tree(3)
        run = self._forced(RunSampler(system, seed=0), 0.3333333333333333)
        assert run.local("a", 0) == (0, 0)

    def test_drifted_float_sums_do_not_shift_cells(self):
        # The float cumulative sum of six tenths collapses onto the
        # double 0.6, which is *below* 6/10; a draw of that very double
        # failed the old strict float comparison and was pushed into
        # child 6 even though it lies exactly inside child 5's cell.
        from repro.analysis import RunSampler

        system = self._uniform_tree(10)
        run = self._forced(RunSampler(system, seed=0), 0.6)
        assert run.local("a", 0) == (0, 5)

    def test_every_boundary_neighbourhood_is_exact(self):
        import math

        from repro.analysis import RunSampler

        system = self._uniform_tree(10)
        sampler = RunSampler(system, seed=0)
        for k in range(1, 10):
            boundary = float(Fraction(k, 10))
            picks = [boundary]
            for _ in range(3):
                picks.append(math.nextafter(picks[-1], 0.0))
                picks.insert(0, math.nextafter(picks[0], 1.0))
            for pick in picks:
                run = self._forced(sampler, pick)
                # ground truth: smallest j with pick < (j + 1)/10 exactly
                expected = next(
                    j for j in range(10) if Fraction(pick) < Fraction(j + 1, 10)
                )
                assert run.local("a", 0) == (0, expected)

    def test_no_fallback_needed_for_draws_near_one(self):
        from repro.analysis import RunSampler

        system = self._uniform_tree(3)
        # float cumulative sum of three thirds is 0.9999999999999999 <
        # 1; the old guard silently returned the last child.  Exactly,
        # this draw still lies inside the last third — but by
        # comparison, not by fallback.
        run = self._forced(RunSampler(system, seed=0), 0.9999999999999999)
        assert run.local("a", 0) == (0, 2)

    def test_sampling_distribution_with_thirds(self):
        from repro.analysis import RunSampler

        system = self._uniform_tree(3)
        counts = [0, 0, 0]
        for run in RunSampler(system, seed=11).sample_runs(9000):
            counts[run.local("a", 0)[1]] += 1
        for count in counts:
            assert abs(count / 9000 - 1 / 3) < 0.02


class TestEstimators:
    def test_probability_estimate(self, firing_squad):
        go_one = lambda run: run.local(ALICE, 0)[1].payload == 1
        est = estimate_probability(firing_squad, go_one, samples=SAMPLES, seed=5)
        assert est.consistent_with(0.5)

    def test_conditional_estimate(self, firing_squad):
        performs = lambda run: bool(run.performs(ALICE, FIRE))
        bob_fires = lambda run: bool(run.performs("bob", FIRE))
        est = estimate_conditional(
            firing_squad, bob_fires, performs, samples=SAMPLES, seed=6
        )
        assert est.consistent_with(0.99)

    def test_achieved_estimate_matches_exact(self, firing_squad):
        exact = achieved_probability(firing_squad, ALICE, both_fire(), FIRE)
        est = estimate_achieved(
            firing_squad, ALICE, both_fire(), FIRE, samples=SAMPLES, seed=7
        )
        assert est.consistent_with(float(exact))

    def test_expected_belief_estimate_matches_exact(self, firing_squad):
        exact = expected_belief(firing_squad, ALICE, both_fire(), FIRE)
        est = estimate_expected_belief(
            firing_squad, ALICE, both_fire(), FIRE, samples=SAMPLES, seed=8
        )
        assert est.consistent_with(float(exact))

    def test_threshold_met_estimate(self, firing_squad):
        est = estimate_threshold_met(
            firing_squad,
            ALICE,
            both_fire(),
            FIRE,
            THRESHOLD,
            samples=SAMPLES,
            seed=9,
        )
        assert est.consistent_with(float(Fraction(991, 1000)))

    def test_unsatisfiable_conditioning_raises(self, firing_squad):
        with pytest.raises(ConditioningOnNullEventError):
            estimate_conditional(
                firing_squad,
                lambda run: True,
                lambda run: False,
                samples=10,
                seed=0,
            )
