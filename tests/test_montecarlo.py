"""Monte-Carlo estimators must converge to the exact quantities."""

from fractions import Fraction

import pytest

from repro import ConditioningOnNullEventError, achieved_probability, expected_belief
from repro.analysis import (
    RunSampler,
    estimate_achieved,
    estimate_conditional,
    estimate_expected_belief,
    estimate_probability,
    estimate_threshold_met,
)
from repro.apps.firing_squad import ALICE, FIRE, THRESHOLD, both_fire

SAMPLES = 4000


class TestSampler:
    def test_reproducible(self, firing_squad):
        a = RunSampler(firing_squad, seed=42).sample_runs(50)
        b = RunSampler(firing_squad, seed=42).sample_runs(50)
        assert [r.index for r in a] == [r.index for r in b]

    def test_different_seeds_differ(self, firing_squad):
        a = RunSampler(firing_squad, seed=1).sample_runs(50)
        b = RunSampler(firing_squad, seed=2).sample_runs(50)
        assert [r.index for r in a] != [r.index for r in b]

    def test_samples_are_actual_runs(self, firing_squad):
        for run in RunSampler(firing_squad, seed=0).sample_runs(20):
            assert firing_squad.runs[run.index] is run

    def test_frequencies_match_measure(self, firing_squad):
        sampler = RunSampler(firing_squad, seed=3)
        counts = {}
        n = 20000
        for run in sampler.sample_runs(n):
            counts[run.index] = counts.get(run.index, 0) + 1
        for run in firing_squad.runs:
            expected = float(run.prob)
            observed = counts.get(run.index, 0) / n
            assert abs(observed - expected) < 0.02


class TestEstimators:
    def test_probability_estimate(self, firing_squad):
        go_one = lambda run: run.local(ALICE, 0)[1].payload == 1
        est = estimate_probability(firing_squad, go_one, samples=SAMPLES, seed=5)
        assert est.consistent_with(0.5)

    def test_conditional_estimate(self, firing_squad):
        performs = lambda run: bool(run.performs(ALICE, FIRE))
        bob_fires = lambda run: bool(run.performs("bob", FIRE))
        est = estimate_conditional(
            firing_squad, bob_fires, performs, samples=SAMPLES, seed=6
        )
        assert est.consistent_with(0.99)

    def test_achieved_estimate_matches_exact(self, firing_squad):
        exact = achieved_probability(firing_squad, ALICE, both_fire(), FIRE)
        est = estimate_achieved(
            firing_squad, ALICE, both_fire(), FIRE, samples=SAMPLES, seed=7
        )
        assert est.consistent_with(float(exact))

    def test_expected_belief_estimate_matches_exact(self, firing_squad):
        exact = expected_belief(firing_squad, ALICE, both_fire(), FIRE)
        est = estimate_expected_belief(
            firing_squad, ALICE, both_fire(), FIRE, samples=SAMPLES, seed=8
        )
        assert est.consistent_with(float(exact))

    def test_threshold_met_estimate(self, firing_squad):
        est = estimate_threshold_met(
            firing_squad,
            ALICE,
            both_fire(),
            FIRE,
            THRESHOLD,
            samples=SAMPLES,
            seed=9,
        )
        assert est.consistent_with(float(Fraction(991, 1000)))

    def test_unsatisfiable_conditioning_raises(self, firing_squad):
        with pytest.raises(ConditioningOnNullEventError):
            estimate_conditional(
                firing_squad,
                lambda run: True,
                lambda run: False,
                samples=10,
                seed=0,
            )
