"""Integration tests for relaxed probabilistic mutual exclusion."""

from fractions import Fraction

from repro import (
    achieved_probability,
    analyze,
    expected_belief,
    is_local_state_independent,
    pak_level,
    runs_satisfying,
    eventually,
)
from repro.apps.mutex import (
    ENTER,
    PROC_1,
    PROC_2,
    build_mutex,
    enters,
    exclusion_holds,
    peer_stays_out,
)


class TestExclusionQuality:
    def test_default_parameters_value(self):
        system = build_mutex()
        # Derived independently: p1 enters iff it wants and hears no
        # request; the peer enters alongside only when both want and
        # both requests are lost.
        achieved = achieved_probability(
            system, PROC_1, peer_stays_out(PROC_1), ENTER
        )
        # P(enter1) = 1/2 * (1/2 + 1/2 * (1/10 * 1 + 9/10 * ... )) —
        # trust the independent hand computation: 109/110.
        assert achieved == Fraction(109, 110)

    def test_symmetry(self):
        system = build_mutex()
        assert achieved_probability(
            system, PROC_1, peer_stays_out(PROC_1), ENTER
        ) == achieved_probability(system, PROC_2, peer_stays_out(PROC_2), ENTER)

    def test_reliable_channel_gives_perfect_exclusion(self):
        system = build_mutex(loss=0)
        assert achieved_probability(
            system, PROC_1, peer_stays_out(PROC_1), ENTER
        ) == 1

    def test_exclusion_degrades_with_loss(self):
        lossy = build_mutex(loss="0.5")
        mild = build_mutex(loss="0.1")
        assert achieved_probability(
            lossy, PROC_1, peer_stays_out(PROC_1), ENTER
        ) < achieved_probability(mild, PROC_1, peer_stays_out(PROC_1), ENTER)

    def test_exclusion_degrades_with_contention(self):
        calm = build_mutex(contention="1/4")
        busy = build_mutex(contention="3/4")
        assert achieved_probability(
            busy, PROC_1, peer_stays_out(PROC_1), ENTER
        ) < achieved_probability(calm, PROC_1, peer_stays_out(PROC_1), ENTER)


class TestViolations:
    def test_violation_runs_exist(self):
        system = build_mutex()
        collisions = runs_satisfying(system, eventually(~exclusion_holds()))
        assert collisions  # both enter when both requests are lost

    def test_violation_probability(self):
        system = build_mutex(contention="1/2", loss="0.1")
        collisions = runs_satisfying(system, eventually(~exclusion_holds()))
        total = sum(system.runs[i].prob for i in collisions)
        # both want (1/4) x both requests lost (1/100)
        assert total == Fraction(1, 400)


class TestPakMachinery:
    def test_enter_is_deterministic_and_independent(self):
        system = build_mutex()
        assert is_local_state_independent(
            system, peer_stays_out(PROC_1), PROC_1, ENTER
        )

    def test_expectation_identity(self):
        system = build_mutex()
        assert expected_belief(
            system, PROC_1, peer_stays_out(PROC_1), ENTER
        ) == achieved_probability(system, PROC_1, peer_stays_out(PROC_1), ENTER)

    def test_full_report(self):
        system = build_mutex()
        report = analyze(system, PROC_1, ENTER, peer_stays_out(PROC_1), "0.95")
        assert report.satisfied
        assert report.all_theorems_verified
        assert report.pak_level == pak_level("0.95")
