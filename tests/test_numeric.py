"""Unit tests for exact probability coercion and square roots."""

from fractions import Fraction

import pytest

from repro.core.numeric import (
    ONE,
    ZERO,
    as_fraction,
    as_probability,
    exact_sqrt,
    sqrt_fraction,
    validate_probability,
)


class TestAsFraction:
    def test_int_passthrough(self):
        assert as_fraction(1) == Fraction(1)

    def test_fraction_passthrough(self):
        value = Fraction(3, 7)
        assert as_fraction(value) is value

    def test_decimal_string(self):
        assert as_fraction("0.1") == Fraction(1, 10)

    def test_ratio_string(self):
        assert as_fraction("9/10") == Fraction(9, 10)

    def test_float_uses_decimal_literal_not_binary_expansion(self):
        # The deliberate deviation from Fraction(float): 0.1 -> 1/10.
        assert as_fraction(0.1) == Fraction(1, 10)

    def test_float_exact_binary_value(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(object())

    def test_bad_string_rejected(self):
        with pytest.raises(ValueError):
            as_fraction("not-a-number")

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_float_rejected_with_type_error(self, value):
        # Regression: these leaked a confusing ValueError from the
        # Fraction(str(x)) literal parse.
        with pytest.raises(TypeError, match="non-finite"):
            as_fraction(value)


class TestValidateProbability:
    def test_interior_value_ok(self):
        assert validate_probability(Fraction(1, 2)) == Fraction(1, 2)

    def test_zero_allowed_by_default(self):
        assert validate_probability(ZERO) == 0

    def test_one_allowed_by_default(self):
        assert validate_probability(ONE) == 1

    def test_zero_rejected_when_disallowed(self):
        with pytest.raises(ValueError):
            validate_probability(ZERO, allow_zero=False)

    def test_one_rejected_when_disallowed(self):
        with pytest.raises(ValueError):
            validate_probability(ONE, allow_one=False)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            validate_probability(Fraction(-1, 2))

    def test_above_one_rejected(self):
        with pytest.raises(ValueError):
            validate_probability(Fraction(3, 2))


class TestAsProbability:
    def test_combines_coercion_and_validation(self):
        assert as_probability("1/4") == Fraction(1, 4)

    def test_range_checked(self):
        with pytest.raises(ValueError):
            as_probability("5/4")


class TestSqrt:
    def test_exact_square(self):
        assert exact_sqrt(Fraction(1, 100)) == Fraction(1, 10)

    def test_exact_integer_square(self):
        assert exact_sqrt(Fraction(49)) == 7

    def test_non_square_returns_none(self):
        assert exact_sqrt(Fraction(1, 2)) is None

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            exact_sqrt(Fraction(-1))

    def test_sqrt_fraction_exact_path(self):
        assert sqrt_fraction(Fraction(9, 16)) == Fraction(3, 4)

    def test_sqrt_fraction_float_fallback_is_close(self):
        approx = sqrt_fraction(Fraction(1, 2))
        assert abs(float(approx) - 0.7071067811865476) < 1e-12

    def test_sqrt_of_zero_and_one(self):
        assert sqrt_fraction(Fraction(0)) == 0
        assert sqrt_fraction(Fraction(1)) == 1
