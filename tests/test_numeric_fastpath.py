"""The two-tier numeric kernel: LazyProb semantics and auto-mode parity.

Three layers of evidence that the float fast path can never change an
answer:

* unit tests of :class:`~repro.core.lazyprob.LazyProb` — comparison
  verdicts against exact rationals (randomized), pair/thunk exact
  values, arithmetic identities, escalation accounting;
* adversarial boundary cases — values within 1e-17 (and far beyond
  float resolution, 1e-20) of a threshold, where the float tier alone
  would answer wrongly: the filter must provably escalate and the
  escalated verdict must match exact arithmetic;
* 18-seed random-system property tests — every threshold verdict,
  theorem check, refrain sweep row, and escalated measure of
  ``numeric="auto"`` must equal ``numeric="exact"`` bit-for-bit.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest

from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_run_fact,
    random_state_fact,
)
from repro.analysis.sweep import refrain_threshold_sweep
from repro.analysis.verify import verify_constraint
from repro.core.beliefs import (
    threshold_met_event,
    threshold_met_measure,
    threshold_met_measures,
)
from repro.core.constraints import achieved_probability
from repro.core.engine import SystemIndex
from repro.core.expectation import expected_belief
from repro.core.lazyprob import (
    LazyProb,
    check_numeric_mode,
    exact_value,
    numeric_stats,
    reset_numeric_stats,
)
from repro.core.numeric import (
    InexactSqrtError,
    sqrt_fraction,
    sqrt_fraction_with_exactness,
)
from repro.core.optimality import achievable_frontier, optimal_acting_states
from repro.core.theorems import pak_level, pak_level_with_exactness
from parity import ParityConfig, assert_fraction_parity

SEEDS = list(range(18))

# The differential grid for auto-mode parity: the numeric tier crossed
# with the shard axis (docs/sharding.md).  Float legs appear only where
# the query is measure-shaped (floats carry no verdict guarantee, but
# sharded float measures must be bitwise-identical to serial ones);
# every third seed runs the full ISSUE matrix including both backends.
FASTPATH_CONFIGS = (
    ParityConfig(0, "exact"),
    ParityConfig(0, "auto"),
    ParityConfig(3, "exact"),
    ParityConfig(3, "auto"),
)
FASTPATH_FLOAT_CONFIGS = (
    ParityConfig(0, "float"),
    ParityConfig(3, "float"),
)


def _fastpath_configs(seed: int, *, floats: bool = False):
    if seed % 3 == 0:
        from parity import DEFAULT_CONFIGS

        if floats:
            return DEFAULT_CONFIGS
        return tuple(c for c in DEFAULT_CONFIGS if c.numeric != "float")
    return FASTPATH_CONFIGS + (FASTPATH_FLOAT_CONFIGS if floats else ())


# ----------------------------------------------------------------------
# LazyProb unit tests
# ----------------------------------------------------------------------


class TestLazyProbComparisons:
    def test_certified_fast_verdicts_do_not_escalate(self):
        reset_numeric_stats()
        a = LazyProb.from_ratio(1, 4)
        assert a < Fraction(1, 2)
        assert a <= Fraction(1, 2)
        assert not (a > Fraction(1, 2))
        assert a != Fraction(1, 2)
        assert numeric_stats().escalations == 0

    def test_equality_escalates_and_is_exact(self):
        reset_numeric_stats()
        a = LazyProb.from_ratio(2, 6)
        assert a == Fraction(1, 3)
        assert numeric_stats().escalations == 1

    def test_randomized_verdict_parity_with_fractions(self):
        rng = random.Random(7)
        for _ in range(4000):
            n1, d1 = rng.randint(-40, 80), rng.randint(1, 80)
            n2, d2 = rng.randint(-40, 80), rng.randint(1, 80)
            if rng.random() < 0.25:  # force near/equal cases
                n2, d2 = n1 * rng.randint(1, 3), d1 * rng.randint(1, 3)
            f1, f2 = Fraction(n1, d1), Fraction(n2, d2)
            l1, l2 = LazyProb.from_ratio(n1, d1), LazyProb.from_ratio(n2, d2)
            assert (l1 < l2) == (f1 < f2)
            assert (l1 <= l2) == (f1 <= f2)
            assert (l1 > f2) == (f1 > f2)
            assert (l1 >= f2) == (f1 >= f2)
            assert (l1 == l2) == (f1 == f2)
            assert (l1 != f2) == (f1 != f2)

    def test_comparisons_against_ints_and_floats(self):
        half = LazyProb.from_ratio(1, 2)
        assert half < 1 and half > 0 and half == Fraction(1, 2)
        # Raw floats in operators mean their binary-exact rational —
        # exactly as Fraction compares, so verdicts match exact mode.
        tenth = LazyProb.from_ratio(1, 10)
        assert (tenth == 0.1) == (Fraction(1, 10) == 0.1)
        assert (tenth < 0.1) == (Fraction(1, 10) < 0.1)
        assert (tenth >= 0.1) == (Fraction(1, 10) >= 0.1)
        assert half == 0.5 and not (half < 0.5)  # 0.5 is binary-exact
        # inf/nan follow Fraction's float semantics exactly.
        assert half < math.inf and half > -math.inf
        assert not (half < math.nan) and not (half == math.nan)
        assert half != math.nan

    def test_unsupported_comparand(self):
        with pytest.raises(TypeError):
            LazyProb.from_ratio(1, 2) < "1/2"  # noqa: B015

    def test_hash_matches_fraction(self):
        assert hash(LazyProb.from_ratio(3, 12)) == hash(Fraction(1, 4))

    def test_sort_and_min_max(self):
        values = [LazyProb.from_ratio(k, 7) for k in (5, 1, 3)]
        assert [v.exact() for v in sorted(values)] == [
            Fraction(1, 7),
            Fraction(3, 7),
            Fraction(5, 7),
        ]
        assert min(values).exact() == Fraction(1, 7)
        assert max(values).exact() == Fraction(5, 7)


class TestLazyProbAdversarial:
    """Cases where the float verdict alone would be wrong."""

    def test_one_third_plus_1e17_must_escalate(self):
        reset_numeric_stats()
        x = LazyProb.from_ratio(10**17 + 3, 3 * 10**17)  # 1/3 + 1e-17
        third = Fraction(1, 3)
        assert x > third and x != third and not (x <= third)
        assert numeric_stats().escalations >= 3

    def test_below_float_resolution(self):
        # 1/3 + 1e-20 rounds to the same double as 1/3.
        x = LazyProb.from_ratio(10**20 + 3, 3 * 10**20)
        third = Fraction(1, 3)
        assert float(x) == float(Fraction(1, 3))
        reset_numeric_stats()
        assert x > third
        assert x != third
        assert numeric_stats().escalations == 2

    def test_threshold_one_ulp_away(self):
        b = Fraction(9, 10)
        just_above = b + Fraction(1, 10**17)
        x = LazyProb.from_ratio(just_above.numerator, just_above.denominator)
        assert x >= b and x > b
        y = LazyProb.from_ratio(b.numerator, b.denominator)
        assert y >= b and not (y > b)
        assert not (y >= just_above)


class TestLazyProbArithmetic:
    def test_pair_arithmetic_is_exact(self):
        rng = random.Random(11)
        import operator

        for _ in range(2000):
            n1, d1 = rng.randint(-30, 60), rng.randint(1, 60)
            n2, d2 = rng.randint(-30, 60), rng.randint(1, 60)
            f1, f2 = Fraction(n1, d1), Fraction(n2, d2)
            l1, l2 = LazyProb.from_ratio(n1, d1), LazyProb.from_ratio(n2, d2)
            op = rng.choice("+-*/")
            if op == "/" and n2 == 0:
                continue
            fn = {
                "+": operator.add,
                "-": operator.sub,
                "*": operator.mul,
                "/": operator.truediv,
            }[op]
            assert fn(l1, l2).exact() == fn(f1, f2)

    def test_scalar_reflected_ops(self):
        x = LazyProb.from_ratio(3, 10)
        assert (1 - x).exact() == Fraction(7, 10)
        assert (1 + x).exact() == Fraction(13, 10)
        assert (2 * x).exact() == Fraction(3, 5)
        assert (1 / x).exact() == Fraction(10, 3)
        assert (Fraction(1, 2) - x).exact() == Fraction(1, 5)
        assert (-x).exact() == Fraction(-3, 10)
        assert abs(-x).exact() == Fraction(3, 10)

    def test_float_operands_are_binary_exact(self):
        # Exact mode tolerates mixed float arithmetic (degrading to
        # float); auto mode must at least not raise — raw floats mean
        # their binary-exact rational, as in Fraction(0.1).
        x = LazyProb.from_ratio(1, 2)
        assert (x - 0.1).exact() == Fraction(1, 2) - Fraction(0.1)
        assert (0.1 + x).exact() == Fraction(0.1) + Fraction(1, 2)
        assert (x * 0.5).exact() == Fraction(1, 4)  # 0.5 is binary-exact
        assert (x / 0.5).exact() == Fraction(1)

    def test_division_by_exact_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            LazyProb.from_ratio(1, 2) / LazyProb.from_ratio(0, 5)

    def test_thunk_backed_division_with_straddling_divisor(self):
        tiny = LazyProb(0.0, 1e-12, thunk=lambda: Fraction(1, 10**30))
        q = LazyProb.from_ratio(1, 2) / tiny
        assert math.isinf(q.err)
        # Verdicts still exact: escalation sees the true huge value.
        assert q > 10**20
        assert q.exact() == Fraction(10**30, 2)

    def test_exact_value_helper(self):
        assert exact_value(LazyProb.from_ratio(2, 4)) == Fraction(1, 2)
        assert exact_value(Fraction(1, 3)) == Fraction(1, 3)
        assert exact_value("opaque") == "opaque"

    def test_check_numeric_mode(self):
        for mode in ("exact", "float", "auto"):
            assert check_numeric_mode(mode) == mode
        with pytest.raises(ValueError):
            check_numeric_mode("fast")


# ----------------------------------------------------------------------
# sqrt_fraction / pak_level explicit approximation (satellite)
# ----------------------------------------------------------------------


class TestSqrtExactness:
    def test_exact_square(self):
        root, is_exact = sqrt_fraction_with_exactness(Fraction(9, 16))
        assert root == Fraction(3, 4) and is_exact

    def test_inexact_flagged(self):
        root, is_exact = sqrt_fraction_with_exactness(Fraction(1, 2))
        assert not is_exact
        assert abs(float(root) - math.sqrt(0.5)) < 1e-12

    def test_exact_required_raises(self):
        with pytest.raises(InexactSqrtError):
            sqrt_fraction(Fraction(1, 2), exact_required=True)
        assert sqrt_fraction(Fraction(1, 4), exact_required=True) == Fraction(1, 2)

    def test_pak_level_exactness(self):
        level, is_exact = pak_level_with_exactness("0.99")
        assert level == Fraction(9, 10) and is_exact
        level, is_exact = pak_level_with_exactness("0.95")
        assert not is_exact
        with pytest.raises(InexactSqrtError):
            pak_level("0.95", exact_required=True)
        assert pak_level("0.99", exact_required=True) == Fraction(9, 10)

    def test_pak_report_flags_approximate_level(self):
        from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad
        from repro.core.pak import analyze

        report = analyze(build_firing_squad(), ALICE, FIRE, both_fire(), "0.95")
        assert not report.pak_level_exact  # 1 - 0.95 = 1/20, not a square
        assert "APPROXIMATE" in report.summary()
        check = report.theorem_checks["corollary-7.2"]
        assert check.premises["epsilon-exactly-sqrt(1-p)"] is False
        assert check.details["epsilon-approximate"] is True

        exact_report = analyze(build_firing_squad(), ALICE, FIRE, both_fire(), "0.99")
        assert exact_report.pak_level_exact
        assert "APPROXIMATE" not in exact_report.summary()


# ----------------------------------------------------------------------
# Auto-mode parity on random systems
# ----------------------------------------------------------------------


def _case(seed: int):
    pps = random_protocol_system(seed, horizon=2)
    rng = random.Random(seed + 5000)
    agent = pps.agents[seed % len(pps.agents)]
    actions = proper_actions_of(pps, agent)
    if not actions:
        return None
    action = actions[seed % len(actions)]
    phi = (
        random_state_fact(seed) if seed % 2 == 0 else random_run_fact(seed)
    )
    threshold = Fraction(rng.randint(0, 8), 8)
    return pps, agent, action, phi, threshold


@pytest.mark.parametrize("seed", SEEDS)
def test_auto_mode_parity_random_systems(seed):
    case = _case(seed)
    if case is None:
        pytest.skip("no proper action for this seed")
    pps, agent, action, phi, threshold = case

    achieved_exact = achieved_probability(pps, agent, phi, action)
    achieved_auto = achieved_probability(pps, agent, phi, action, numeric="auto")
    assert isinstance(achieved_auto, LazyProb)
    assert achieved_auto.exact() == achieved_exact
    assert (achieved_auto >= threshold) == (achieved_exact >= threshold)

    # Bounds include the acting beliefs themselves (forced escalations)
    # — computed once on a scratch system, shared by every grid point.
    index = SystemIndex.of(pps)
    bounds = [threshold, Fraction(0), Fraction(1)]
    bounds += [
        index.belief(agent, phi, local)
        for local in list(index.state_cells(agent, action))[:2]
    ]
    grid = [Fraction(k, 16) for k in range(17)] + bounds

    def query(system, *, numeric):
        # Threshold events must be identical sets, including at bounds
        # exactly equal to acting beliefs; measures and the batched
        # grid must carry identical exact values.  Events are omitted
        # from the float legs (float verdicts carry no guarantee; the
        # measures must still be bitwise-reproducible across shards).
        result = {
            "achieved": achieved_probability(
                system, agent, phi, action, numeric=numeric
            ),
            "expected": expected_belief(
                system, agent, phi, action, numeric=numeric
            ),
            "grid": threshold_met_measures(
                system, agent, phi, action, grid, numeric=numeric
            ),
        }
        if numeric != "float":
            result["events"] = [
                threshold_met_event(
                    system, agent, phi, action, bound, numeric=numeric
                )
                for bound in bounds
            ]
            result["measures"] = [
                threshold_met_measure(
                    system, agent, phi, action, bound, numeric=numeric
                )
                for bound in bounds
            ]
        return result

    assert_fraction_parity(
        query,
        [lambda: _case(seed)[0]],
        _fastpath_configs(seed, floats=True),
    )
    reset_numeric_stats()
    auto_measures = threshold_met_measures(pps, agent, phi, action, grid, numeric="auto")
    stats = numeric_stats()
    # The grid ran as one batched pass of the sorted kernel: every
    # distinct bound is either float-certified or exactly refined, and
    # the bounds equal to acting posteriors (exact ties) must refine.
    assert stats.array_batches == 1
    assert stats.cells_certified + stats.cells_escalated == len(set(grid))
    assert stats.cells_escalated >= 1 and stats.escalations >= 1
    assert [
        exact_value(m) for m in auto_measures
    ] == threshold_met_measures(pps, agent, phi, action, grid)


@pytest.mark.parametrize("seed", SEEDS)
def test_auto_mode_theorem_checks_identical(seed):
    case = _case(seed)
    if case is None:
        pytest.skip("no proper action for this seed")
    _, agent, action, phi, threshold = case

    def query(system, *, numeric):
        checks = verify_constraint(
            system, agent, action, phi, threshold, numeric=numeric
        )
        return {
            name: (
                check.premises,
                check.conclusion,
                check.verified,
                {key: exact_value(value) for key, value in check.details.items()},
            )
            for name, check in checks.items()
        }

    assert_fraction_parity(
        query,
        [lambda: _case(seed)[0]],
        _fastpath_configs(seed),
    )


@pytest.mark.parametrize("seed", SEEDS[:8])
def test_auto_mode_optimality_parity(seed):
    case = _case(seed)
    if case is None:
        pytest.skip("no proper action for this seed")
    _, agent, action, phi, _ = case

    def query(system, *, numeric):
        frontier = achievable_frontier(
            system, agent, phi, action, numeric=numeric
        )
        best = optimal_acting_states(system, agent, phi, action, numeric=numeric)
        return {
            "frontier": [
                (entry.states, entry.acting_mass, entry.value)
                for entry in frontier
            ],
            "best": (best.states, best.value),
        }

    assert_fraction_parity(
        query,
        [lambda: _case(seed)[0]],
        _fastpath_configs(seed),
    )


def test_refrain_sweep_parity_and_escalation_on_firing_squad():
    from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad

    base_exact = build_firing_squad()
    base_auto = build_firing_squad()
    phi = both_fire()
    index = SystemIndex.of(base_exact)
    beliefs = sorted(
        index.belief(ALICE, phi, local)
        for local in index.state_cells(ALICE, FIRE)
    )
    # Thresholds include exact belief values and 1e-17 perturbations:
    # the float tier cannot separate these from the beliefs themselves.
    thresholds = [Fraction(k, 16) for k in range(17)]
    thresholds += [b for b in beliefs if 0 < b < 1]
    thresholds += [b + Fraction(1, 10**17) for b in beliefs if 0 < b < 1]
    rows_exact = refrain_threshold_sweep(base_exact, ALICE, phi, FIRE, thresholds)
    reset_numeric_stats()
    rows_auto = refrain_threshold_sweep(
        base_auto, ALICE, phi, FIRE, thresholds, numeric="auto"
    )
    assert numeric_stats().escalations > 0
    assert len(rows_exact) == len(rows_auto)
    for exact_row, auto_row in zip(rows_exact, rows_auto):
        assert exact_row["threshold"] == auto_row["threshold"]
        assert exact_value(auto_row["achieved"]) == exact_row["achieved"]
        assert exact_value(auto_row["coverage"]) == exact_row["coverage"]


def test_refrain_sweep_materialize_matches_derived_fast_path():
    from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad

    phi = both_fire()
    thresholds = [Fraction(k, 8) for k in range(9)]
    derived_rows = refrain_threshold_sweep(
        build_firing_squad(), ALICE, phi, FIRE, thresholds
    )
    materialized_rows = refrain_threshold_sweep(
        build_firing_squad(), ALICE, phi, FIRE, thresholds, materialize=True
    )
    assert derived_rows == materialized_rows


def test_sweep_numeric_knob_forwards_mode():
    from repro.analysis.sweep import sweep

    seen = []

    def row_fn(x, numeric):
        seen.append(numeric)
        return {"y": x}

    rows = sweep({"x": [1, 2]}, row_fn, numeric="auto")
    assert seen == ["auto", "auto"]
    assert [row["y"] for row in rows] == [1, 2]
    with pytest.raises(ValueError):
        sweep({"x": [1]}, lambda x, numeric: {}, numeric="bogus")


def test_float_mode_returns_floats():
    from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad

    pps = build_firing_squad()
    phi = both_fire()
    value = achieved_probability(pps, ALICE, phi, FIRE, numeric="float")
    assert isinstance(value, float)
    assert abs(value - 0.99) < 1e-12
    measure = threshold_met_measure(pps, ALICE, phi, FIRE, "0.95", numeric="float")
    assert isinstance(measure, float)


def test_format_value_markers():
    from repro.analysis.sweep import format_value

    assert format_value(Fraction(1, 3)) == "1/3 (~0.333333)"
    assert format_value(LazyProb.from_ratio(2, 6)) == "1/3 (~0.333333)="
    assert format_value(LazyProb.from_ratio(4, 2)) == "2="
    assert format_value(0.25) == "~0.25"
    assert format_value(True) == "yes"


def test_derived_index_inherits_lazy_beliefs_for_action_free_facts():
    from repro.apps.firing_squad import ALICE, FIRE, build_firing_squad
    from repro.core.atoms import state_fact
    from repro.protocols.strategies import refrain_below_threshold

    base = build_firing_squad()
    index = SystemIndex.of(base)
    # Compiled locals are time-stamped (t, RecordingState) pairs.
    go_fact = state_fact(lambda state: state.local(0)[1].payload == 1, label="go")
    local = next(iter(index.state_cells(ALICE, FIRE)))
    cached = index.belief(ALICE, go_fact, local, numeric="auto")
    from repro.apps.firing_squad import both_fire

    derived = refrain_below_threshold(
        base, ALICE, FIRE, both_fire(), Fraction(1, 2)
    )
    derived_index = SystemIndex.of(derived)
    key = (ALICE, index._fact_key(go_fact), local)
    assert derived_index._lazy_beliefs.get(key) is cached
