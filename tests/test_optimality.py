"""Unit tests for the Section 8 optimality analysis."""

from fractions import Fraction

from repro import (
    achievable_frontier,
    achieved_probability,
    is_belief_optimal,
    optimal_acting_states,
)
from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad
from repro.apps.theorem52 import AGENT_I, ALPHA, bit_is_one
from repro.protocols import refrain_below_threshold


class TestFrontierOnFiringSquad:
    def test_frontier_points(self, firing_squad):
        frontier = achievable_frontier(firing_squad, ALICE, both_fire(), FIRE)
        values = [point.value for point in frontier]
        # Yes-only -> 1; Yes+nothing -> FS' = 990/991; everything -> FS.
        assert values == [1, Fraction(990, 991), Fraction(99, 100)]

    def test_frontier_masses_monotone(self, firing_squad):
        frontier = achievable_frontier(firing_squad, ALICE, both_fire(), FIRE)
        masses = [point.acting_mass for point in frontier]
        assert masses == sorted(masses)

    def test_last_point_is_the_original_protocol(self, firing_squad):
        frontier = achievable_frontier(firing_squad, ALICE, both_fire(), FIRE)
        assert frontier[-1].value == achieved_probability(
            firing_squad, ALICE, both_fire(), FIRE
        )

    def test_middle_point_is_the_refrain_transform(self, firing_squad):
        # The FS' point of the frontier coincides with the mechanical
        # refrain-below-0.95 transform.
        improved = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), "0.95"
        )
        frontier = achievable_frontier(firing_squad, ALICE, both_fire(), FIRE)
        assert frontier[1].value == achieved_probability(
            improved, ALICE, both_fire(), FIRE
        )

    def test_state_sets_nested(self, firing_squad):
        frontier = achievable_frontier(firing_squad, ALICE, both_fire(), FIRE)
        for earlier, later in zip(frontier, frontier[1:]):
            assert earlier.states < later.states


class TestOptimum:
    def test_fs_optimum_acts_only_on_yes(self, firing_squad):
        best = optimal_acting_states(firing_squad, ALICE, both_fire(), FIRE)
        assert best.value == 1
        assert len(best.states) == 1
        assert best.acting_mass == Fraction(891, 2000)  # 1/2 * 0.891

    def test_fs_is_not_optimal(self, firing_squad):
        assert not is_belief_optimal(firing_squad, ALICE, both_fire(), FIRE)

    def test_single_state_systems_are_optimal(self, theorem52):
        # Improving the T_hat construction is possible (drop the m_j
        # states), so it is *not* optimal either:
        assert not is_belief_optimal(theorem52, AGENT_I, bit_is_one(), ALPHA)

    def test_uniform_belief_system_is_optimal(self):
        from repro.apps.coordinated_attack import (
            ATTACK,
            GENERAL_A,
            both_attack,
            build_coordinated_attack,
        )

        # With no acks A has a single acting information state, so no
        # refinement can help.
        system = build_coordinated_attack(ack_rounds=0)
        assert is_belief_optimal(system, GENERAL_A, both_attack(), ATTACK)

    def test_tie_broken_toward_coverage(self):
        from repro.apps.coordinated_attack import (
            ATTACK,
            GENERAL_A,
            both_attack,
            build_coordinated_attack,
        )

        system = build_coordinated_attack(ack_rounds=0)
        best = optimal_acting_states(system, GENERAL_A, both_attack(), ATTACK)
        frontier = achievable_frontier(system, GENERAL_A, both_attack(), ATTACK)
        assert best == frontier[-1]

    def test_optimum_dominates_every_threshold_transform(self, firing_squad):
        best = optimal_acting_states(firing_squad, ALICE, both_fire(), FIRE)
        for threshold in ("0.5", "0.95", "0.995"):
            improved = refrain_below_threshold(
                firing_squad, ALICE, FIRE, both_fire(), threshold
            )
            assert best.value >= achieved_probability(
                improved, ALICE, both_fire(), FIRE
            )
