"""Unit tests for the one-call PAK analysis report."""

from fractions import Fraction

from repro import analyze
from repro.apps.firing_squad import ALICE, FIRE, THRESHOLD, both_fire
from repro.apps.theorem52 import AGENT_I, ALPHA, bit_is_one


class TestAnalyzeFiringSquad:
    def report(self, firing_squad):
        return analyze(firing_squad, ALICE, FIRE, both_fire(), THRESHOLD)

    def test_headline_numbers(self, firing_squad):
        report = self.report(firing_squad)
        assert report.achieved == Fraction(99, 100)
        assert report.expected_belief == Fraction(99, 100)
        assert report.threshold_met_measure == Fraction(991, 1000)
        assert report.satisfied

    def test_expectation_identity_flag(self, firing_squad):
        assert self.report(firing_squad).expectation_identity_holds

    def test_independence_reasons(self, firing_squad):
        report = self.report(firing_squad)
        assert report.independent
        assert "deterministic-action" in report.independence_reasons

    def test_pak_level(self, firing_squad):
        report = self.report(firing_squad)
        # p = 0.95 -> 1 - sqrt(0.05); not a perfect square, so the
        # level is a float-backed rational near 0.7764.
        assert abs(float(report.pak_level) - 0.7763932) < 1e-6
        assert report.pak_level_met_measure >= 1 - (1 - report.pak_level)

    def test_belief_profile_rows(self, firing_squad):
        profile = self.report(firing_squad).belief_profile
        assert len(profile) == 3
        assert sorted(cell.belief for cell in profile.values()) == [
            0,
            Fraction(99, 100),
            1,
        ]

    def test_all_theorems_verified(self, firing_squad):
        assert self.report(firing_squad).all_theorems_verified

    def test_summary_text(self, firing_squad):
        text = self.report(firing_squad).summary()
        assert "SATISFIED" in text
        assert "99/100" in text
        assert "Theorem 6.2" in text


class TestAnalyzeTheorem52:
    def test_exact_construction_values(self, theorem52):
        report = analyze(theorem52, AGENT_I, ALPHA, bit_is_one(), "0.9")
        assert report.achieved == Fraction(9, 10)
        assert report.threshold_met_measure == Fraction(1, 10)
        assert report.expected_belief == Fraction(9, 10)
        assert report.expectation_identity_holds
        assert report.all_theorems_verified

    def test_unsatisfied_constraint_reported(self, theorem52):
        report = analyze(theorem52, AGENT_I, ALPHA, bit_is_one(), "0.95")
        assert not report.satisfied
        assert "VIOLATED" in report.summary()
