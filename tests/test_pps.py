"""Unit tests for the pps tree structure, runs, and validation."""

from fractions import Fraction

import pytest

from repro import (
    GlobalState,
    InvalidSystemError,
    Node,
    NotStochasticError,
    PPS,
    PPSBuilder,
    SynchronyViolationError,
    UnknownAgentError,
    ZeroProbabilityError,
)


def tiny_system() -> PPS:
    builder = PPSBuilder(["a"], name="tiny")
    root = builder.initial(1, {"a": (0, "s")})
    root.child("1/4", {"a": (1, "x")}, actions={"a": "left"})
    root.child("3/4", {"a": (1, "y")}, actions={"a": "right"})
    return builder.build()


class TestStructure:
    def test_run_count(self):
        assert tiny_system().run_count() == 2

    def test_run_probabilities_multiply_edges(self):
        system = tiny_system()
        probs = sorted(run.prob for run in system.runs)
        assert probs == [Fraction(1, 4), Fraction(3, 4)]

    def test_run_probabilities_sum_to_one(self):
        assert sum(run.prob for run in tiny_system().runs) == 1

    def test_node_count_includes_root(self):
        assert tiny_system().node_count() == 4

    def test_max_time(self):
        assert tiny_system().max_time() == 1

    def test_points_enumerates_run_time_pairs(self):
        points = list(tiny_system().points())
        assert len(points) == 4  # 2 runs x 2 times

    def test_local_states_collects_all(self):
        states = tiny_system().local_states("a")
        assert states == {(0, "s"), (1, "x"), (1, "y")}

    def test_occurrence_time(self):
        system = tiny_system()
        assert system.occurrence_time("a", (1, "x")) == 1
        assert system.occurrence_time("a", (0, "s")) == 0
        assert system.occurrence_time("a", (9, "nope")) is None

    def test_actions_of(self):
        assert tiny_system().actions_of("a") == {"left", "right"}

    def test_agent_index_unknown_agent(self):
        with pytest.raises(UnknownAgentError):
            tiny_system().agent_index("nobody")

    def test_runs_through_root_children(self):
        system = tiny_system()
        initial = system.root.children[0]
        through = system.runs_through(initial)
        assert through == {0, 1}

    def test_runs_through_leaf_is_single(self):
        system = tiny_system()
        leaf = system.root.children[0].children[0]
        assert len(system.runs_through(leaf)) == 1

    def test_repr_mentions_name(self):
        assert "tiny" in repr(tiny_system())


class TestRunAccessors:
    def test_state_and_local(self):
        system = tiny_system()
        run = system.runs[0]
        assert run.local("a", 0) == (0, "s")
        assert run.local("a", 1) in {(1, "x"), (1, "y")}

    def test_local_unknown_agent(self):
        run = tiny_system().runs[0]
        with pytest.raises(UnknownAgentError):
            run.local("ghost", 0)

    def test_action_of_records_edge_action(self):
        system = tiny_system()
        actions = {run.action_of("a", 0) for run in system.runs}
        assert actions == {"left", "right"}

    def test_action_of_final_time_is_none(self):
        run = tiny_system().runs[0]
        assert run.action_of("a", run.final_time) is None

    def test_performs_times(self):
        system = tiny_system()
        left_run = next(r for r in system.runs if r.action_of("a", 0) == "left")
        assert left_run.performs("a", "left") == (0,)
        assert left_run.performs("a", "right") == ()

    def test_shares_prefix_true_at_time_zero(self):
        system = tiny_system()
        r0, r1 = system.runs
        assert r0.shares_prefix(r1, 0)

    def test_shares_prefix_false_after_branch(self):
        system = tiny_system()
        r0, r1 = system.runs
        assert not r0.shares_prefix(r1, 1)

    def test_shares_prefix_out_of_range(self):
        system = tiny_system()
        r0, r1 = system.runs
        assert not r0.shares_prefix(r1, 5)

    def test_env_state(self):
        assert tiny_system().runs[0].env_state(0) is None


class TestValidation:
    def test_probabilities_must_sum_to_one(self):
        root = Node(uid=0, depth=0, state=None)
        child = Node(
            uid=1,
            depth=1,
            state=GlobalState(env=None, locals=((0, "s"),)),
            prob_from_parent=Fraction(1, 2),
            parent=root,
        )
        root.children.append(child)
        with pytest.raises(NotStochasticError):
            PPS(["a"], root)

    def test_zero_probability_edge_rejected(self):
        root = Node(uid=0, depth=0, state=None)
        good = Node(
            uid=1,
            depth=1,
            state=GlobalState(env=None, locals=((0, "s"),)),
            prob_from_parent=Fraction(1),
            parent=root,
        )
        bad = Node(
            uid=2,
            depth=1,
            state=GlobalState(env=None, locals=((0, "z"),)),
            prob_from_parent=Fraction(0),
            parent=root,
        )
        root.children.extend([good, bad])
        with pytest.raises(ZeroProbabilityError):
            PPS(["a"], root)

    def test_synchrony_violation_rejected(self):
        # The same local state "s" at times 0 and 1.
        root = Node(uid=0, depth=0, state=None)
        first = Node(
            uid=1,
            depth=1,
            state=GlobalState(env=None, locals=("s",)),
            parent=root,
        )
        second = Node(
            uid=2,
            depth=2,
            state=GlobalState(env=None, locals=("s",)),
            parent=first,
        )
        root.children.append(first)
        first.children.append(second)
        with pytest.raises(SynchronyViolationError):
            PPS(["a"], root)

    def test_root_with_state_rejected(self):
        root = Node(
            uid=0, depth=0, state=GlobalState(env=None, locals=(("x"),))
        )
        with pytest.raises(InvalidSystemError):
            PPS(["a"], root)

    def test_empty_tree_rejected(self):
        with pytest.raises(InvalidSystemError):
            PPS(["a"], Node(uid=0, depth=0, state=None))

    def test_wrong_arity_rejected(self):
        root = Node(uid=0, depth=0, state=None)
        child = Node(
            uid=1,
            depth=1,
            state=GlobalState(env=None, locals=((0, "s"),)),  # one local
            parent=root,
        )
        root.children.append(child)
        with pytest.raises(InvalidSystemError):
            PPS(["a", "b"], root)  # two agents

    def test_duplicate_agent_names_rejected(self):
        root = Node(uid=0, depth=0, state=None)
        child = Node(
            uid=1,
            depth=1,
            state=GlobalState(env=None, locals=((0, "s"), (0, "t"))),
            parent=root,
        )
        root.children.append(child)
        with pytest.raises(InvalidSystemError):
            PPS(["a", "a"], root)

    def test_inconsistent_depth_rejected(self):
        root = Node(uid=0, depth=0, state=None)
        child = Node(
            uid=1,
            depth=2,  # should be 1
            state=GlobalState(env=None, locals=((0, "s"),)),
            parent=root,
        )
        root.children.append(child)
        with pytest.raises(InvalidSystemError):
            PPS(["a"], root)

    def test_inconsistent_parent_link_rejected(self):
        root = Node(uid=0, depth=0, state=None)
        stranger = Node(uid=9, depth=0, state=None)
        child = Node(
            uid=1,
            depth=1,
            state=GlobalState(env=None, locals=((0, "s"),)),
            parent=stranger,
        )
        root.children.append(child)
        with pytest.raises(InvalidSystemError):
            PPS(["a"], root)

    def test_validate_false_skips_checks(self):
        root = Node(uid=0, depth=0, state=None)
        child = Node(
            uid=1,
            depth=1,
            state=GlobalState(env=None, locals=((0, "s"),)),
            prob_from_parent=Fraction(1, 2),  # not stochastic
            parent=root,
        )
        root.children.append(child)
        system = PPS(["a"], root, validate=False)  # does not raise
        assert system.run_count() == 1


class TestNodeHelpers:
    def test_path_probability(self, two_coin_tree):
        leaf = two_coin_tree.root.children[0].children[0]
        assert leaf.path_probability() == Fraction(1, 6)

    def test_time_of_root(self):
        assert Node(uid=0, depth=0, state=None).time == -1

    def test_leaf_detection(self, two_coin_tree):
        leaf = two_coin_tree.root.children[0].children[0]
        assert leaf.is_leaf and not two_coin_tree.root.is_leaf
