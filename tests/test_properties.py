"""Property-based tests: the paper's theorems on random systems.

The theorems are universally quantified over pps; these tests sample
that universe.  Systems come from :func:`random_protocol_system` (valid
by construction: protocol-structured, synchronous, time-tagged proper
actions) and conditions from the seeded fact generators.  Every checker
must come back ``verified`` — a failure is a library bug, never an
artifact of the input.
"""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    belief,
    check_lemma_4_3,
    check_theorem_6_2,
    expected_belief,
    is_local_state_independent,
    jeffrey_conditional,
    achieved_probability,
)
from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_run_fact,
    random_state_fact,
)
from repro.analysis.verify import assert_theorems
from repro.protocols import Distribution

SMALL_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)
mixed_levels = st.sampled_from([0.0, 0.5, 1.0])
densities = st.sampled_from([0.25, 0.5, 0.75])


def first_proper_action(system, agent):
    actions = proper_actions_of(system, agent)
    assert actions, "generator always produces at least one action"
    return actions[0]


@SMALL_SETTINGS
@given(seed=seeds, mixed=mixed_levels, density=densities)
def test_all_theorems_hold_on_random_systems(seed, mixed, density):
    system = random_protocol_system(seed, mixed_level=mixed)
    phi = random_state_fact(seed + 1, density=density)
    for agent in system.agents:
        action = first_proper_action(system, agent)
        assert_theorems(system, agent, action, phi, "1/2")


@SMALL_SETTINGS
@given(seed=seeds, density=densities)
def test_theorems_hold_even_for_run_facts(seed, density):
    # Run facts may depend on actions; premises can fail, but every
    # implication must still be verified (possibly vacuously).
    system = random_protocol_system(seed)
    phi = random_run_fact(seed + 2, density=density)
    agent = system.agents[0]
    action = first_proper_action(system, agent)
    assert_theorems(system, agent, action, phi, "1/3")


@SMALL_SETTINGS
@given(seed=seeds, mixed=mixed_levels)
def test_lemma_4_3_state_facts_always_independent(seed, mixed):
    # State facts are past-based; Lemma 4.3(b) promises independence
    # for every proper action, even heavily mixed ones.
    system = random_protocol_system(seed, mixed_level=mixed)
    phi = random_state_fact(seed + 3)
    for agent in system.agents:
        for action in proper_actions_of(system, agent):
            check = check_lemma_4_3(system, agent, action, phi)
            assert check.verified
            assert check.conclusion  # premise always holds here


@SMALL_SETTINGS
@given(seed=seeds)
def test_expectation_identity_exact_under_independence(seed):
    system = random_protocol_system(seed)
    phi = random_state_fact(seed + 4)
    agent = system.agents[0]
    action = first_proper_action(system, agent)
    assert is_local_state_independent(system, phi, agent, action)
    assert achieved_probability(system, agent, phi, action) == expected_belief(
        system, agent, phi, action
    )


@SMALL_SETTINGS
@given(seed=seeds, density=densities)
def test_jeffrey_decomposition_always_agrees(seed, density):
    # The decomposed conditional equals the direct one for *every*
    # fact, independent or not (law of total probability).
    system = random_protocol_system(seed)
    phi = random_run_fact(seed + 5, density=density)
    agent = system.agents[0]
    action = first_proper_action(system, agent)
    assert jeffrey_conditional(
        system, agent, phi, action
    ) == achieved_probability(system, agent, phi, action)


@SMALL_SETTINGS
@given(seed=seeds, density=densities)
def test_beliefs_are_probabilities(seed, density):
    system = random_protocol_system(seed)
    phi = random_state_fact(seed + 6, density=density)
    for agent in system.agents:
        for local in system.local_states(agent):
            value = belief(system, agent, phi, local)
            assert 0 <= value <= 1


@SMALL_SETTINGS
@given(seed=seeds)
def test_belief_is_additive_in_the_condition(seed):
    # beta(phi) + beta(~phi) == 1 at every state.
    system = random_protocol_system(seed)
    phi = random_state_fact(seed + 7)
    agent = system.agents[0]
    for local in system.local_states(agent):
        assert belief(system, agent, phi, local) + belief(
            system, agent, ~phi, local
        ) == 1


@SMALL_SETTINGS
@given(seed=seeds)
def test_run_measure_is_a_probability_measure(seed):
    system = random_protocol_system(seed)
    assert sum(run.prob for run in system.runs) == 1
    assert all(run.prob > 0 for run in system.runs)


@SMALL_SETTINGS
@given(seed=seeds)
def test_compiled_systems_validate(seed):
    system = random_protocol_system(seed, horizon=3, n_agents=2)
    system.validate()


@given(
    weights=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6)
)
def test_distribution_normalization_invariant(weights):
    total = sum(weights)
    dist = Distribution(
        {index: Fraction(weight, total) for index, weight in enumerate(weights)}
    )
    assert sum(w for _, w in dist.items()) == 1
    assert len(dist.support) == len(weights)


@given(
    weights=st.lists(st.integers(min_value=1, max_value=9), min_size=2, max_size=5),
    modulus=st.integers(min_value=1, max_value=3),
)
def test_distribution_map_preserves_mass(weights, modulus):
    total = sum(weights)
    dist = Distribution(
        {index: Fraction(weight, total) for index, weight in enumerate(weights)}
    )
    mapped = dist.map(lambda outcome: outcome % modulus)
    assert sum(w for _, w in mapped.items()) == 1


@SMALL_SETTINGS
@given(seed=seeds)
def test_threshold_met_measure_antitone_in_threshold(seed):
    from repro import threshold_met_measure

    system = random_protocol_system(seed)
    phi = random_state_fact(seed + 8)
    agent = system.agents[0]
    action = first_proper_action(system, agent)
    thresholds = [Fraction(k, 4) for k in range(5)]
    measures = [
        threshold_met_measure(system, agent, phi, action, t) for t in thresholds
    ]
    assert measures == sorted(measures, reverse=True)
    assert measures[0] == 1  # threshold 0 is always met


@SMALL_SETTINGS
@given(seed=seeds)
def test_theorem_7_1_parametric_on_random_systems(seed):
    from repro import check_theorem_7_1

    system = random_protocol_system(seed)
    phi = random_state_fact(seed + 9)
    agent = system.agents[0]
    action = first_proper_action(system, agent)
    for delta in (Fraction(1, 10), Fraction(1, 2)):
        for epsilon in (Fraction(1, 10), Fraction(1, 2)):
            check = check_theorem_7_1(system, agent, action, phi, delta, epsilon)
            assert check.verified


@SMALL_SETTINGS
@given(seed=seeds)
def test_refrain_transform_never_hurts(seed):
    # Section 8, as a universal property: refraining at below-average
    # belief states never lowers the achieved probability.
    from repro import achieved_probability
    from repro.protocols import refrain_below_threshold

    system = random_protocol_system(seed)
    phi = random_state_fact(seed + 10)
    agent = system.agents[0]
    action = first_proper_action(system, agent)
    base = achieved_probability(system, agent, phi, action)
    improved_system = refrain_below_threshold(system, agent, action, phi, base)
    from repro.core.actions import performing_runs

    if performing_runs(improved_system, agent, action):
        assert achieved_probability(
            improved_system, agent, phi, action
        ) >= base


@SMALL_SETTINGS
@given(seed=seeds)
def test_optimal_frontier_dominates_original(seed):
    from repro import achievable_frontier, achieved_probability, optimal_acting_states

    system = random_protocol_system(seed)
    phi = random_state_fact(seed + 11)
    agent = system.agents[0]
    action = first_proper_action(system, agent)
    frontier = achievable_frontier(system, agent, phi, action)
    base = achieved_probability(system, agent, phi, action)
    assert frontier[-1].value == base
    best = optimal_acting_states(system, agent, phi, action)
    assert best.value >= base
    # Frontier values are antitone in coverage (prefix averages of a
    # descending sequence).
    values = [point.value for point in frontier]
    assert values == sorted(values, reverse=True)
