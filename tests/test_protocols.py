"""Unit tests for agent protocols, environments, and adversaries."""

import pytest

from repro.protocols import (
    Adversary,
    AgentProtocol,
    ConstantProtocol,
    Distribution,
    FunctionEnvironment,
    FunctionProtocol,
    PassiveEnvironment,
    TableProtocol,
    as_protocol,
    coerce_distribution,
    enumerate_adversaries,
)


class TestCoercion:
    def test_bare_value_becomes_point(self):
        dist = coerce_distribution("act")
        assert dist.is_deterministic() and dist.prob("act") == 1

    def test_distribution_passthrough(self):
        d = Distribution.uniform(["a", "b"])
        assert coerce_distribution(d) is d


class TestFunctionProtocol:
    def test_deterministic_return(self):
        protocol = FunctionProtocol(lambda local: f"at-{local}")
        assert protocol.act("x").prob("at-x") == 1

    def test_mixed_return(self):
        protocol = FunctionProtocol(
            lambda local: Distribution.uniform(["l", "r"])
        )
        assert protocol.is_mixed_at("anything")

    def test_not_mixed_for_point(self):
        protocol = FunctionProtocol(lambda local: "only")
        assert not protocol.is_mixed_at("anything")


class TestConstantProtocol:
    def test_same_everywhere(self):
        protocol = ConstantProtocol("wait")
        assert protocol.act("x") == protocol.act("y")


class TestTableProtocol:
    def test_lookup(self):
        protocol = TableProtocol({"s": "go"})
        assert protocol.act("s").prob("go") == 1

    def test_missing_without_default_raises(self):
        protocol = TableProtocol({"s": "go"})
        with pytest.raises(KeyError):
            protocol.act("unknown")

    def test_default(self):
        protocol = TableProtocol({"s": "go"}, default="wait")
        assert protocol.act("unknown").prob("wait") == 1


class TestAsProtocol:
    def test_callable_wrapped(self):
        protocol = as_protocol(lambda local: "a")
        assert isinstance(protocol, AgentProtocol)

    def test_protocol_passthrough(self):
        protocol = ConstantProtocol("x")
        assert as_protocol(protocol) is protocol

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            as_protocol(42)


class TestEnvironments:
    def test_passive(self):
        env = PassiveEnvironment()
        assert env.react("anything", {}).prob(None) == 1

    def test_function_environment_sees_actions(self):
        env = FunctionEnvironment(
            lambda state, joint: "busy" if joint.get("a") == "send" else "idle"
        )
        assert env.react(None, {"a": "send"}).prob("busy") == 1
        assert env.react(None, {"a": "wait"}).prob("idle") == 1


class TestAdversaries:
    def test_enumeration_is_cartesian(self):
        advs = enumerate_adversaries({"go": [0, 1], "fault": ["crash", "none"]})
        assert len(advs) == 4

    def test_enumeration_deterministic_order(self):
        a1 = enumerate_adversaries({"x": [1, 2]})
        a2 = enumerate_adversaries({"x": [1, 2]})
        assert a1 == a2

    def test_get(self):
        adversary = Adversary.of(go=1, fault="none")
        assert adversary.get("go") == 1
        with pytest.raises(KeyError):
            adversary.get("missing")

    def test_hashable_canonical(self):
        assert Adversary.of(a=1, b=2) == Adversary.of(b=2, a=1)
        assert hash(Adversary.of(a=1, b=2)) == hash(Adversary.of(b=2, a=1))

    def test_describe(self):
        assert "go=1" in Adversary.of(go=1).describe()
