"""Unit tests for the random-system generators themselves."""

import pytest

from repro import is_past_based, is_proper
from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_run_fact,
    random_state_fact,
)


class TestGeneratorDeterminism:
    def test_same_seed_same_system(self):
        a = random_protocol_system(7)
        b = random_protocol_system(7)
        assert a.run_count() == b.run_count()
        assert sorted(r.prob for r in a.runs) == sorted(r.prob for r in b.runs)

    def test_different_seeds_usually_differ(self):
        shapes = {
            (random_protocol_system(seed).run_count()) for seed in range(8)
        }
        assert len(shapes) > 1

    def test_facts_deterministic(self):
        system = random_protocol_system(3)
        fact = random_state_fact(11)
        again = random_state_fact(11)
        run = system.runs[0]
        for t in run.times():
            assert fact.holds(system, run, t) == again.holds(system, run, t)


class TestGeneratedSystemShape:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_pps(self, seed):
        system = random_protocol_system(seed)
        system.validate()  # must not raise
        assert sum(run.prob for run in system.runs) == 1

    def test_horizon_respected(self):
        system = random_protocol_system(0, horizon=3)
        assert system.max_time() == 3

    def test_agent_count(self):
        system = random_protocol_system(0, n_agents=3)
        assert len(system.agents) == 3

    @pytest.mark.parametrize("seed", range(6))
    def test_all_performed_actions_are_proper(self, seed):
        # Actions are time-tagged by construction, so every performed
        # action is proper automatically.
        system = random_protocol_system(seed)
        for agent in system.agents:
            for action in system.actions_of(agent):
                assert is_proper(system, agent, action)

    def test_proper_actions_of_ordering_is_stable(self):
        system = random_protocol_system(5)
        assert proper_actions_of(system, "a0") == proper_actions_of(system, "a0")

    def test_deterministic_mode(self):
        system = random_protocol_system(2, mixed_level=0.0)
        # With no mixing, each initial state induces branching only
        # through the environment (at most 2 per round).
        from repro.core.actions import is_deterministic_action

        for agent in system.agents:
            for action in system.actions_of(agent):
                assert is_deterministic_action(system, agent, action)


class TestGeneratedFacts:
    @pytest.mark.parametrize("seed", range(4))
    def test_state_facts_are_past_based(self, seed):
        system = random_protocol_system(seed)
        fact = random_state_fact(seed + 100)
        assert is_past_based(system, fact)

    def test_run_facts_are_run_facts(self):
        fact = random_run_fact(9)
        assert fact.is_run_fact

    def test_density_extremes(self):
        system = random_protocol_system(1)
        never = random_state_fact(5, density=0.0)
        always = random_state_fact(5, density=1.0)
        for run, t in system.points():
            assert not never.holds(system, run, t)
            assert always.holds(system, run, t)
