"""Reweighting layer: probability overlays, weight-split indices, parity.

Covers the PR 9 tentpole and satellites:

* ``ReweightedPPS`` shares the parent tree (node identity, run
  indices) and recomputes only run probabilities through the flattened
  override table;
* ``SystemIndex.derived`` inherits every shape-dependent table by
  reference for reweighted children and rebuilds the weight kernel
  bit-identical to a cold build (``_weight_tables`` single source);
* derived-vs-materialized Fraction-exact parity of measures, beliefs,
  achieved probabilities, and Lemma 5.1 verdicts on ≥18 random
  protocol systems plus the FS app, under both ``scale_adversary``
  drift and ``condition_on`` conditioning;
* the full differential grid (shards × numeric tiers × backends) over
  reweighted and conditioned systems, referenced against standalone
  materialized rebuilds;
* zero-weight edges keep their run slots; zero-total reweights and
  off-measure overrides fail loudly at construction naming an edge;
* ``Distribution.reweight`` and the app-level consumers
  (``drift_loss``, ``drift_under_adversaries``, ``reweight_sweep``).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro import (
    achieved_probability,
    belief_profile,
    check_lemma_5_1,
    performing_runs,
    probability,
    runs_satisfying,
)
from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_state_fact,
)
from repro.analysis.sweep import reweight_sweep
from repro.apps.firing_squad import (
    ALICE,
    BOB,
    FIRE,
    THRESHOLD,
    both_fire,
    build_firing_squad,
    drift_loss,
)
from repro.core.atoms import local_fact, performed
from repro.core.engine import SystemIndex
from repro.core.errors import InvalidSystemError, NotStochasticError
from repro.core.facts import eventually
from repro.core.numeric import as_fraction
from repro.core.pps import DerivedPPS, Node, ProbabilityOverlay, ReweightedPPS
from repro.core.reweight import (
    condition_on,
    materialize_reweighted,
    reweight_edges,
    scale_adversary,
)
from repro.protocols import (
    Adversary,
    Distribution,
    drift_under_adversaries,
    relabel_actions,
)

from parity import DEFAULT_CONFIGS, assert_fraction_parity


def _first_sibling(node: Node) -> bool:
    """Select the first of two-or-more siblings (a generic 'adversary')."""
    parent = node.parent
    return (
        parent is not None
        and len(parent.children) >= 2
        and parent.children[0] is node
    )


def _outcome(fn):
    """``("ok", value)`` or ``("raise", ExceptionName)`` — for mirrored
    assertions on systems where a transform may have stripped an
    action's entire coverage."""
    try:
        return ("ok", fn())
    except Exception as exc:  # noqa: BLE001 - mirrored, not swallowed
        return ("raise", type(exc).__name__)


# ----------------------------------------------------------------------
# Tentpole: derived-vs-materialized parity on random systems
# ----------------------------------------------------------------------


def _assert_reweight_parity(parent, derived, agent, action, phi):
    """The reweighted child and its materialized rebuild agree everywhere."""
    assert isinstance(derived, ReweightedPPS)
    assert derived.root is parent.root  # node identity preserved
    materialized = materialize_reweighted(derived)

    # Run space: same indices, same exact probabilities, measure intact.
    assert len(derived.runs) == len(parent.runs) == len(materialized.runs)
    assert [r.index for r in derived.runs] == [r.index for r in parent.runs]
    assert [r.prob for r in derived.runs] == [r.prob for r in materialized.runs]
    assert sum((r.prob for r in derived.runs), start=Fraction(0)) == 1

    # Beliefs of the condition and of an action-dependent fact.  A
    # factor-0 drift can zero out every run through a local state, in
    # which case the belief there is 0/0 — identically on both sides.
    for fact in (phi, performed(agent, action)):
        assert _outcome(
            lambda: belief_profile(derived, agent, fact)
        ) == _outcome(lambda: belief_profile(materialized, agent, fact))

    # Achieved probability — or the identical refusal when the reweight
    # drove the action's coverage to zero.
    assert _outcome(
        lambda: achieved_probability(derived, agent, phi, action)
    ) == _outcome(lambda: achieved_probability(materialized, agent, phi, action))

    # Theorem verdicts.
    for threshold in ("1/3", "2/3"):
        left = _outcome(
            lambda: check_lemma_5_1(derived, agent, action, phi, threshold)
        )
        right = _outcome(
            lambda: check_lemma_5_1(materialized, agent, action, phi, threshold)
        )
        if left[0] == "ok":
            l, r = left[1], right[1]
            assert (l.premises, l.conclusion) == (r.premises, r.conclusion)
        else:
            assert left == right

    # The fast (inherited) index matches a cold rebuild of the same
    # derived system on every weight table.
    fast = SystemIndex.of(derived)
    cold = SystemIndex(derived)
    assert fast._denominator == cold._denominator
    assert fast._weights == cold._weights
    assert fast._prefix == cold._prefix


class TestRandomReweightParity:
    @pytest.mark.parametrize("seed", range(18))
    def test_scale_adversary(self, seed):
        pps = random_protocol_system(
            seed, n_agents=2, horizon=2, mixed_level=(seed % 3) / 2
        )
        agent = pps.agents[seed % len(pps.agents)]
        actions = proper_actions_of(pps, agent)
        assert actions, "generator guarantees proper actions"
        action = actions[seed % len(actions)]
        phi = random_state_fact(seed)
        factor = ("1/2", "0", "3/4")[seed % 3]
        scaled = scale_adversary(pps, _first_sibling, factor)
        _assert_reweight_parity(pps, scaled, agent, action, phi)

    @pytest.mark.parametrize("seed", range(18))
    def test_condition_on(self, seed):
        pps = random_protocol_system(
            seed, n_agents=2, horizon=2, mixed_level=(seed % 3) / 2
        )
        agent = pps.agents[seed % len(pps.agents)]
        actions = proper_actions_of(pps, agent)
        action = actions[seed % len(actions)]
        phi = random_state_fact(seed)
        conditioned = condition_on(pps, performed(agent, action))
        _assert_reweight_parity(pps, conditioned, agent, action, phi)


class TestConditionOnSemantics:
    def test_conditioned_measure_is_the_conditional(self, firing_squad):
        fact = performed(BOB, FIRE)
        mask = SystemIndex.of(firing_squad).runs_satisfying_mask(fact)
        mu = probability(firing_squad, performing_runs(firing_squad, BOB, FIRE))
        assert 0 < mu < 1
        conditioned = condition_on(firing_squad, fact)
        assert probability(
            conditioned, performing_runs(conditioned, BOB, FIRE)
        ) == 1
        for run, original in zip(conditioned.runs, firing_squad.runs):
            if mask >> run.index & 1:
                assert run.prob == original.prob / mu
            else:
                assert run.prob == 0

    def test_conditioning_on_certainty_is_identity(self, firing_squad):
        sure = eventually(local_fact(ALICE, lambda local: True, label="any"))
        conditioned = condition_on(firing_squad, sure)
        assert not conditioned.is_reweighted
        assert [r.prob for r in conditioned.runs] == [
            r.prob for r in firing_squad.runs
        ]


# ----------------------------------------------------------------------
# Tentpole: weight-split index inheritance internals
# ----------------------------------------------------------------------


class TestWeightSplitInheritance:
    def _pair(self, firing_squad):
        derived = scale_adversary(firing_squad, _first_sibling, "1/2")
        return SystemIndex.of(firing_squad), SystemIndex.of(derived), derived

    def test_shape_tables_shared_by_reference(self, firing_squad):
        parent, child, _ = self._pair(firing_squad)
        assert child.run_count == parent.run_count
        assert child.all_mask == parent.all_mask
        assert child._node_ranges is parent._node_ranges
        assert child._alive is parent._alive
        assert child._local_occurrence is parent._local_occurrence
        assert child._partitions is parent._partitions
        assert child._event_cache is parent._event_cache
        assert child._component_cache is parent._component_cache
        assert child._shard_plans is parent._shard_plans

    def test_weight_tables_rebuilt_not_shared(self, firing_squad):
        parent, child, _ = self._pair(firing_squad)
        assert child._weights is not parent._weights
        assert child._weights != parent._weights
        assert child._prefix is not parent._prefix
        assert child._prob_cache is not parent._prob_cache
        assert child._total_cache is not parent._total_cache
        assert child._bounds_cache is not parent._bounds_cache
        # Both kernels normalize: prefix totals equal the denominator.
        assert child._prefix[-1] == child._denominator
        assert parent._prefix[-1] == parent._denominator

    def test_reweighted_child_owns_its_weight_kernel(self, firing_squad):
        parent, child, _ = self._pair(firing_squad)
        assert child.weight_kernel() is not parent.weight_kernel()
        assert child.weight_kernel() is child.weight_kernel()  # memoized

    def test_relabel_child_resolves_kernel_to_parent(self, firing_squad):
        parent = SystemIndex.of(firing_squad)
        relabeled = relabel_actions(firing_squad, lambda node, via: via)
        child = SystemIndex.of(relabeled)
        assert child._weights is parent._weights
        assert child.weight_kernel() is parent.weight_kernel()

    def test_action_free_fact_masks_survive_reweighting(self, firing_squad):
        base = build_firing_squad()
        index = SystemIndex.of(base)
        sure = eventually(local_fact(ALICE, lambda local: True, label="any"))
        runs_satisfying(base, sure)  # prime the parent cache
        key = index._fact_key(sure)
        assert key in index._fact_masks and key in index._action_free
        child = SystemIndex.of(scale_adversary(base, _first_sibling, "1/2"))
        assert child._fact_masks[key] == index._fact_masks[key]

    def test_belief_cache_dropped_on_reweighting(self, firing_squad):
        from repro import belief

        base = build_firing_squad()
        phi = eventually(local_fact(BOB, lambda local: True, label="bob-any"))
        local = next(iter(SystemIndex.of(base).state_cells(ALICE, FIRE)))
        belief(base, ALICE, phi, local)  # prime
        assert SystemIndex.of(base)._belief_cache
        drifted = drift_loss(base, "0.2")
        child = SystemIndex.of(drifted)
        # Posteriors are weight-dependent: the cache starts empty and
        # refills with the *drifted* values.
        assert child._belief_cache == {}
        assert belief(drifted, ALICE, phi, local) == belief(
            materialize_reweighted(drifted), ALICE, phi, local
        )

    def test_dependency_tables_cover_every_index_attribute(self, firing_squad):
        derived = scale_adversary(firing_squad, _first_sibling, "1/2")
        check_lemma_5_1(derived, ALICE, FIRE, both_fire(), THRESHOLD)
        check_lemma_5_1(
            derived, ALICE, FIRE, both_fire(), THRESHOLD, numeric="auto"
        )
        known = set(SystemIndex.DEPENDENCY_CLASS) | set(
            SystemIndex.BOOKKEEPING_ATTRS
        )
        for index in (SystemIndex.of(firing_squad), SystemIndex.of(derived)):
            unclassified = set(vars(index)) - known
            assert not unclassified, (
                f"index attributes without a dependency class: {unclassified}"
            )

    def test_dependency_class_lookup(self):
        assert SystemIndex.dependency_class("_weights") == "weight"
        assert SystemIndex.dependency_class("_belief_cache") == "weight"
        assert SystemIndex.dependency_class("_alive") == "shape"
        assert SystemIndex.dependency_class("_fact_masks") == "shape"
        with pytest.raises(KeyError):
            SystemIndex.dependency_class("pps")  # bookkeeping, not cache


# ----------------------------------------------------------------------
# Overlay chaining: reweight and relabel compose in either order
# ----------------------------------------------------------------------


class TestOverlayChaining:
    @staticmethod
    def _rename(node, via):
        if via.get(ALICE) == FIRE:
            via[ALICE] = "launch"
        return via

    def test_both_orders_agree(self, firing_squad):
        reweight_then_relabel = relabel_actions(
            scale_adversary(firing_squad, _first_sibling, "1/2"), self._rename
        )
        relabel_then_reweight = scale_adversary(
            relabel_actions(firing_squad, self._rename),
            _first_sibling,
            "1/2",
        )
        for chained in (reweight_then_relabel, relabel_then_reweight):
            assert isinstance(chained, DerivedPPS)
            assert chained.is_reweighted
            assert chained._prob_overrides and chained._edge_overrides
            assert chained.root is firing_squad.root
            assert not performing_runs(chained, ALICE, FIRE)
            assert performing_runs(chained, ALICE, "launch")
        assert [r.prob for r in reweight_then_relabel.runs] == [
            r.prob for r in relabel_then_reweight.runs
        ]
        left = probability(
            reweight_then_relabel,
            performing_runs(reweight_then_relabel, ALICE, "launch"),
        )
        right = probability(
            relabel_then_reweight,
            performing_runs(relabel_then_reweight, ALICE, "launch"),
        )
        assert left == right
        baked = materialize_reweighted(reweight_then_relabel)
        assert probability(
            baked, performing_runs(baked, ALICE, "launch")
        ) == left

    def test_inverse_drift_restores_the_parent_measure(self, firing_squad):
        halved = scale_adversary(firing_squad, _first_sibling, "1/2")
        restored = scale_adversary(halved, _first_sibling, 2)
        for node in firing_squad.nodes():
            if node.parent is not None:
                assert restored.edge_probability(node) == node.prob_from_parent
        assert [r.prob for r in restored.runs] == [
            r.prob for r in firing_squad.runs
        ]

    def test_relabel_of_reweighted_parent_shares_its_weights(self, firing_squad):
        drifted = drift_loss(firing_squad, "0.2")
        relabeled = relabel_actions(drifted, self._rename)
        drifted_index = SystemIndex.of(drifted)
        child = SystemIndex.of(relabeled)
        # The relabelling did not change probabilities relative to its
        # (reweighted) parent, so the weight kernel is inherited from
        # *it*, not rebuilt a second time.
        assert child._weights is drifted_index._weights
        assert child.weight_kernel() is drifted_index.weight_kernel()


# ----------------------------------------------------------------------
# Zero-weight edges keep their run slots
# ----------------------------------------------------------------------


class TestZeroWeightEdges:
    def test_factor_zero_keeps_runs_with_zero_probability(self, firing_squad):
        removed = scale_adversary(firing_squad, _first_sibling, "0")
        assert len(removed.runs) == len(firing_squad.runs)
        assert any(r.prob == 0 for r in removed.runs)
        assert sum((r.prob for r in removed.runs), start=Fraction(0)) == 1
        materialized = materialize_reweighted(removed)
        assert [r.prob for r in materialized.runs] == [
            r.prob for r in removed.runs
        ]

    def test_drift_to_boundary_keeps_runs_cold_build_prunes(self, firing_squad):
        drifted = drift_loss(firing_squad, "0")
        assert len(drifted.runs) == len(firing_squad.runs)
        cold = build_firing_squad(loss="0")
        assert len(cold.runs) < len(drifted.runs)
        # Same measure on both sides despite the differing run spaces.
        phi = eventually(both_fire())
        assert probability(drifted, runs_satisfying(drifted, phi)) == (
            probability(cold, runs_satisfying(cold, phi))
        )
        assert achieved_probability(drifted, ALICE, both_fire(), FIRE) == (
            achieved_probability(cold, ALICE, both_fire(), FIRE)
        )


# ----------------------------------------------------------------------
# Loud failure: malformed reweights at construction
# ----------------------------------------------------------------------


class TestReweightValidation:
    def test_zero_total_names_a_zeroed_edge(self, firing_squad):
        initial = firing_squad.root.children
        with pytest.raises(ValueError, match="overridden to 0"):
            reweight_edges(firing_squad, [(child, 0) for child in initial])

    def test_off_measure_total_raises_not_stochastic(self, firing_squad):
        child = firing_squad.root.children[0]
        with pytest.raises(NotStochasticError, match="expected 1"):
            reweight_edges(firing_squad, [(child, "1/4")])

    def test_negative_probability_rejected(self, firing_squad):
        child = firing_squad.root.children[0]
        with pytest.raises(InvalidSystemError, match="non-negative"):
            reweight_edges(firing_squad, [(child, Fraction(-1, 2))])

    def test_root_override_rejected(self, firing_squad):
        with pytest.raises(InvalidSystemError, match="root"):
            ProbabilityOverlay([(firing_squad.root, Fraction(1, 2))])

    def test_foreign_node_rejected(self, firing_squad):
        other = build_firing_squad(loss="0.2")
        foreign = other.root.children[0]
        with pytest.raises(InvalidSystemError, match="does not belong"):
            reweight_edges(firing_squad, [(foreign, foreign.prob_from_parent)])

    def test_scale_negative_factor_rejected(self, firing_squad):
        with pytest.raises(ValueError, match=">= 0"):
            scale_adversary(firing_squad, _first_sibling, "-1/2")

    def test_scale_overshoot_names_the_node(self, firing_squad):
        with pytest.raises(ValueError, match="exceeds 1"):
            scale_adversary(firing_squad, _first_sibling, 10)

    def test_scale_without_honest_sibling_rejected(self, firing_squad):
        with pytest.raises(ValueError, match="no honest sibling"):
            scale_adversary(firing_squad, lambda node: True, "1/2")

    def test_condition_on_zero_measure_fact_rejected(self, firing_squad):
        with pytest.raises(ValueError, match="probability zero"):
            condition_on(firing_squad, performed(ALICE, "warble"))

    def test_drift_loss_ambiguous_old_rate_rejected(self):
        half = build_firing_squad(loss="0.5")
        with pytest.raises(ValueError, match="several loss/delivery"):
            drift_loss(half, "0.3", old_loss="0.5")

    def test_drift_loss_rejects_out_of_range_target(self, firing_squad):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            drift_loss(firing_squad, "3/2")


# ----------------------------------------------------------------------
# Distribution.reweight
# ----------------------------------------------------------------------


class TestDistributionReweight:
    def test_scales_and_renormalizes(self):
        d = Distribution({"a": "1/2", "b": "1/4", "c": "1/4"})
        doubled = d.reweight(lambda o: 2 if o == "a" else 1)
        assert doubled.prob("a") == Fraction(2, 3)
        assert doubled.prob("b") == Fraction(1, 6)
        assert doubled.prob("c") == Fraction(1, 6)

    def test_zero_factor_drops_the_outcome(self):
        d = Distribution({"a": "1/2", "b": "1/2"})
        kept = d.reweight(lambda o: 0 if o == "b" else 1)
        assert "b" not in kept
        assert kept.prob("a") == 1

    def test_negative_factor_rejected(self):
        d = Distribution({"a": "1/2", "b": "1/2"})
        with pytest.raises(ValueError, match="negative"):
            d.reweight(lambda o: Fraction(-1) if o == "b" else 1)

    def test_all_zero_total_names_an_outcome(self):
        d = Distribution({"a": "1/2", "b": "1/2"})
        with pytest.raises(ValueError, match="total probability to zero"):
            d.reweight(lambda o: 0)


# ----------------------------------------------------------------------
# Consumers: drift_loss vs recompile, adversary drift, the sweep
# ----------------------------------------------------------------------


class TestDriftLoss:
    def test_matches_a_cold_recompile(self, firing_squad):
        drifted = drift_loss(firing_squad, "0.2")
        cold = build_firing_squad(loss="0.2")
        phi = both_fire()
        event = eventually(phi)
        assert achieved_probability(drifted, ALICE, phi, FIRE) == Fraction(24, 25)
        for left, right in (
            (drifted, cold),
            (materialize_reweighted(drifted), cold),
        ):
            assert achieved_probability(left, ALICE, phi, FIRE) == (
                achieved_probability(right, ALICE, phi, FIRE)
            )
            assert probability(left, runs_satisfying(left, event)) == (
                probability(right, runs_satisfying(right, event))
            )
            assert belief_profile(left, ALICE, phi) == belief_profile(
                right, ALICE, phi
            )

    def test_identity_drift_changes_nothing(self, firing_squad):
        same = drift_loss(firing_squad, "0.1")
        assert not same.is_reweighted
        assert [r.prob for r in same.runs] == [r.prob for r in firing_squad.runs]


class TestDriftUnderAdversaries:
    def test_drifts_every_compiled_system(self):
        compiled = {
            Adversary.of(channel="lossy"): build_firing_squad(),
            Adversary.of(channel="clean"): build_firing_squad(loss="0.05"),
        }
        drifted = drift_under_adversaries(
            compiled, lambda adv, node: _first_sibling(node), "1/2"
        )
        assert set(drifted) == set(compiled)
        for adversary, system in drifted.items():
            assert isinstance(system, ReweightedPPS)
            assert "drift(1/2)" in system.name
            direct = scale_adversary(
                compiled[adversary], _first_sibling, "1/2"
            )
            assert [r.prob for r in system.runs] == [
                r.prob for r in direct.runs
            ]

    def test_per_adversary_selection(self):
        lossy = Adversary.of(kind="lossy")
        clean = Adversary.of(kind="clean")
        compiled = {
            lossy: build_firing_squad(),
            clean: build_firing_squad(loss="0.05"),
        }
        drifted = drift_under_adversaries(
            compiled,
            lambda adv, node: adv is lossy and _first_sibling(node),
            "1/2",
        )
        assert drifted[lossy].is_reweighted
        assert not drifted[clean].is_reweighted


class TestReweightSweep:
    @staticmethod
    def _measure(system, *, numeric="exact"):
        check = check_lemma_5_1(
            system, ALICE, FIRE, both_fire(), THRESHOLD, numeric=numeric
        )
        return {
            "conclusion": check.conclusion,
            "achieved": achieved_probability(system, ALICE, both_fire(), FIRE),
        }

    def test_serial_parallel_materialized_agree(self, firing_squad):
        values = ["0.05", "0.1", "0.2", "0.05"]  # duplicate exercises fan-out
        serial = reweight_sweep(
            firing_squad, drift_loss, values, self._measure, param="loss"
        )
        parallel = reweight_sweep(
            firing_squad,
            drift_loss,
            values,
            self._measure,
            param="loss",
            parallel=2,
        )
        materialized = reweight_sweep(
            firing_squad,
            drift_loss,
            values,
            self._measure,
            param="loss",
            materialize=True,
        )
        assert serial == parallel == materialized
        assert [row["loss"] for row in serial] == [
            as_fraction(value) for value in values
        ]
        assert serial[0] == serial[3]
        assert serial[0]["achieved"] == Fraction(399, 400)
        assert serial[2]["achieved"] == Fraction(24, 25)

    def test_param_name_collision_raises(self, firing_squad):
        with pytest.raises(ValueError, match="conclusion"):
            reweight_sweep(
                firing_squad,
                drift_loss,
                ["0.2"],
                self._measure,
                param="conclusion",
            )


# ----------------------------------------------------------------------
# The differential grid: shards × numeric tiers × backends
# ----------------------------------------------------------------------


def _lemma_query(system, *, numeric="exact"):
    check = check_lemma_5_1(
        system, ALICE, FIRE, both_fire(), THRESHOLD, numeric=numeric
    )
    return {"premises": check.premises, "conclusion": check.conclusion}


def _achieved_query(system, *, numeric="exact"):
    return {
        "alice": achieved_probability(
            system, ALICE, both_fire(), FIRE, numeric=numeric
        ),
        "bob": achieved_probability(
            system, BOB, both_fire(), FIRE, numeric=numeric
        ),
    }


REWEIGHTED_FACTORIES = (
    lambda: drift_loss(build_firing_squad(), "0.2"),
    lambda: scale_adversary(build_firing_squad(), _first_sibling, "1/2"),
)


class TestReweightedParityGrid:
    def test_reweighted_lemma_verdicts(self):
        assert_fraction_parity(
            _lemma_query,
            REWEIGHTED_FACTORIES,
            DEFAULT_CONFIGS,
            reference_fn=lambda system: _lemma_query(
                materialize_reweighted(system)
            ),
        )

    def test_conditioned_achieved_probabilities(self):
        # The lemma's independence scan would divide by the occurrence
        # of cells the conditioning zeroed; achieved probabilities stay
        # well-defined and non-trivial (99/100 for Alice) here.
        assert_fraction_parity(
            _achieved_query,
            [
                lambda: condition_on(
                    build_firing_squad(), performed(ALICE, FIRE)
                )
            ],
            DEFAULT_CONFIGS,
            reference_fn=lambda system: _achieved_query(
                materialize_reweighted(system)
            ),
        )
