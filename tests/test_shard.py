"""Sharded run spaces: combine laws, determinism, and cache hygiene.

Property tests for :mod:`repro.core.shard` (see ``docs/sharding.md``):

* the combine laws are associative and *shard-count invariant* —
  masks, integer ``(total, denominator)`` pairs, and LazyProb bounds
  recombine to the single-process values for every split;
* evaluation is deterministic across worker counts and repeated runs,
  including the ``numeric_stats()`` counters (per-worker deltas must
  be absorbed into the parent, never dropped);
* frontier selection handles the edges (K > leaves, single-leaf
  shards, derived/overlay indices);
* a fork-copied memo cache can never leak stale entries back into the
  parent index — only the explicitly combined results are written back.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_run_fact,
    random_state_fact,
)
from repro.analysis.sweep import refrain_threshold_sweep
from repro.core.engine import SystemIndex
from repro.core.errors import ConditioningOnNullEventError
from repro.core.facts import eventually
from repro.core.lazyprob import (
    LazyProb,
    exact_value,
    numeric_stats,
    reset_numeric_stats,
)
from repro.core.shard import (
    ShardPlan,
    ShardedExecutor,
    combine_bounds,
    combine_masks,
    combine_totals,
    default_shards,
    set_default_shards,
)

SHARD_COUNTS = (1, 2, 3, 5, 8, 64)


def _index(seed: int, mixed: float = 0.5) -> SystemIndex:
    return SystemIndex.of(random_protocol_system(seed, mixed_level=mixed))


def _interesting_masks(index: SystemIndex):
    phi = eventually(random_state_fact(1))
    psi = random_run_fact(2)
    full, partial = index.events_of([phi, psi])
    return [
        0,
        index.all_mask,
        full,
        partial,
        full & ~1,
        partial | 1,
        0b1011 & index.all_mask,
    ]


# ----------------------------------------------------------------------
# Combine laws
# ----------------------------------------------------------------------


class TestCombineLaws:
    def test_mask_and_total_combine_associative(self):
        parts = [0b0011, 0b0100, 0b1000, 0b0000]
        totals = [7, 11, 0, 23]
        for split in range(1, len(parts)):
            left, right = parts[:split], parts[split:]
            assert combine_masks(
                [combine_masks(left), combine_masks(right)]
            ) == combine_masks(parts)
            tl, tr = totals[:split], totals[split:]
            assert combine_totals(
                [combine_totals(tl), combine_totals(tr)]
            ) == combine_totals(totals)

    def test_bounds_combine_is_conservative_under_regrouping(self):
        # Regrouped combines may widen the error but must keep the
        # exact value inside the bound — the only property verdicts
        # rely on.
        terms = [(0.25, 1e-18), (0.125, 0.0), (0.5, 2e-17), (0.0625, 1e-19)]
        exact = sum(Fraction(a).limit_denominator(10**6) for a, _ in terms)
        flat_a, flat_e = combine_bounds(terms)
        for split in range(1, len(terms)):
            grouped = combine_bounds(
                [combine_bounds(terms[:split]), combine_bounds(terms[split:])]
            )
            assert abs(grouped[0] - float(exact)) <= grouped[1]
            assert abs(flat_a - float(exact)) <= flat_e

    def test_empty_and_infinite_bounds(self):
        assert combine_bounds([]) == (0.0, 0.0)
        approx, err = combine_bounds([(1.0, 0.0), (float("inf"), 0.0)])
        assert err == float("inf")

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_shard_count_invariance_of_measures(self, seed, shards):
        index = _index(seed)
        plan = index.shard_plan(shards)
        for mask in _interesting_masks(index):
            subs = plan.submasks(mask)
            # Disjoint restrictions that OR back to the mask...
            assert combine_masks(subs) == mask
            for i, a in enumerate(subs):
                for b in subs[i + 1 :]:
                    assert a & b == 0
            # ...whose integer totals sum to the unsharded total...
            assert combine_totals(
                [index.mask_total(sub) for sub in subs]
            ) == index.mask_total(mask)
            # ...and whose combined float bound brackets the true value.
            approx, err = combine_bounds(
                [index.mask_bounds(sub) for sub in subs]
            )
            true = index.mask_total(mask)
            assert abs(approx - float(true)) <= err


# ----------------------------------------------------------------------
# Frontier / plan edge cases
# ----------------------------------------------------------------------


class TestShardPlan:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_plan_partitions_run_universe(self, seed, shards):
        index = _index(seed)
        plan = index.shard_plan(shards)
        assert plan.boundaries[0] == 0
        assert plan.boundaries[-1] == index.run_count
        assert list(plan.boundaries) == sorted(set(plan.boundaries))
        assert 1 <= plan.shard_count <= min(shards, index.run_count)
        assert combine_masks(plan.masks) == index.all_mask
        for run in range(index.run_count):
            lo, hi = plan.ranges[plan.shard_of(run)]
            assert lo <= run < hi

    def test_k_above_leaf_count_clamps_to_single_leaf_shards(self):
        index = _index(1)
        plan = index.shard_plan(10 ** 6)
        assert plan.shard_count == index.run_count
        assert all(hi - lo == 1 for lo, hi in plan.ranges)

    def test_k_one_is_the_whole_universe(self):
        index = _index(1)
        plan = index.shard_plan(1)
        assert plan.ranges == ((0, index.run_count),)

    def test_plans_memoized_and_shared_with_derived_indices(self):
        from repro.protocols.strategies import refrain_below_threshold

        pps = random_protocol_system(5, mixed_level=0.5)
        index = SystemIndex.of(pps)
        agent = pps.agents[0]
        action = proper_actions_of(pps, agent)[0]
        plan = index.shard_plan(3)
        assert index.shard_plan(3) is plan
        derived = refrain_below_threshold(
            pps, agent, action, eventually(random_state_fact(6)), Fraction(1, 2)
        )
        derived_index = SystemIndex.of(derived)
        assert derived_index._shard_plans is index._shard_plans
        assert derived_index.shard_plan(3) is plan

    def test_invalid_boundaries_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan(4, (0, 2))  # does not reach run_count
        with pytest.raises(ValueError):
            ShardPlan(4, (1, 4))  # does not start at 0
        with pytest.raises(ValueError):
            ShardPlan(4, (0, 2, 2, 4))  # empty shard
        with pytest.raises(IndexError):
            ShardPlan(4, (0, 4)).shard_of(4)

    def test_default_shards_knob(self):
        previous = set_default_shards(5)
        try:
            assert default_shards() == 5
            assert set_default_shards(0) == 5
            assert default_shards() == 0
            with pytest.raises(ValueError):
                set_default_shards(-1)
        finally:
            set_default_shards(previous)

    def test_repro_shards_env_parsing(self, monkeypatch):
        import repro.core.shard as shard_module

        for raw, expected in (("3", 3), ("0", 0), ("", 0), ("junk", 0), ("-2", 0)):
            monkeypatch.setattr(shard_module, "_default_shards", None)
            monkeypatch.setenv("REPRO_SHARDS", raw)
            assert default_shards() == expected
        monkeypatch.setattr(shard_module, "_default_shards", None)
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert default_shards() == 0


# ----------------------------------------------------------------------
# In-process sharded scans (the REPRO_SHARDS path)
# ----------------------------------------------------------------------


class TestInProcessShardedScan:
    @pytest.mark.parametrize("shards", (2, 3, 8))
    def test_scan_bit_identical_to_serial(self, shards):
        phi = eventually(random_state_fact(11))
        psi = random_run_fact(12)
        serial_index = _index(7)
        serial_events = serial_index.events_of([phi, psi])
        serial_truths = serial_index.truths_at([phi], 1)
        previous = set_default_shards(shards)
        try:
            sharded_index = SystemIndex(random_protocol_system(7, mixed_level=0.5))
            assert sharded_index.events_of([phi, psi]) == serial_events
            assert sharded_index.truths_at([phi], 1) == serial_truths
        finally:
            set_default_shards(previous)

    def test_scan_error_isolation_matches_serial(self):
        from repro.core.facts import LambdaRunFact

        def boom(pps, run):
            raise RuntimeError("partial fact")

        bad = LambdaRunFact(boom, label="boom")
        good = random_run_fact(13)
        serial_index = _index(9)
        s_masks, s_errors = serial_index._scan_batch([bad, good], None)
        previous = set_default_shards(3)
        try:
            sharded_index = SystemIndex(random_protocol_system(9, mixed_level=0.5))
            masks, errors = sharded_index._scan_batch([bad, good], None)
        finally:
            set_default_shards(previous)
        assert masks[1] == s_masks[1]
        assert errors[1] is None is s_errors[1]
        assert type(errors[0]) is type(s_errors[0])
        assert str(errors[0]) == str(s_errors[0])


# ----------------------------------------------------------------------
# The multiprocess executor
# ----------------------------------------------------------------------


class TestShardedExecutor:
    @pytest.mark.parametrize("shards", (2, 3, 8))
    def test_events_and_truths_match_serial(self, shards):
        phi = eventually(random_state_fact(21))
        psi = random_run_fact(22)
        serial_index = _index(14)
        expected_events = serial_index.events_of([phi, psi])
        expected_truths = serial_index.truths_at([phi, psi], 1)
        index = SystemIndex(random_protocol_system(14, mixed_level=0.5))
        with ShardedExecutor(index, shards=shards, payload=(phi, psi)) as ex:
            assert ex.events_of([phi, psi]) == expected_events
            assert ex.truths_at([phi, psi], 1) == expected_truths
            # Second query hits the absorbed caches, same answer.
            assert ex.events_of([phi, psi]) == expected_events

    def test_measures_bit_identical_across_modes(self):
        index = _index(15)
        masks = _interesting_masks(index)
        with ShardedExecutor(index, shards=3) as ex:
            for mask in masks:
                assert ex.probability(mask) == index.probability(mask)
                assert ex.probability(mask, numeric="float") == index.probability(
                    mask, numeric="float"
                )
                auto = ex.probability(mask, numeric="auto")
                assert exact_value(auto) == index.probability(mask)
            given = masks[2] or index.all_mask
            for target in masks:
                assert ex.conditional(target, given) == index.conditional(
                    target, given
                )
                assert ex.conditional(
                    target, given, numeric="float"
                ) == index.conditional(target, given, numeric="float")
                assert exact_value(
                    ex.conditional(target, given, numeric="auto")
                ) == index.conditional(target, given)
            with pytest.raises(ConditioningOnNullEventError):
                ex.conditional(masks[2], 0)

    def test_auto_bounds_bracket_exact_value(self):
        index = _index(16)
        with ShardedExecutor(index, shards=5) as ex:
            for mask in _interesting_masks(index):
                value = ex.probability(mask, numeric="auto")
                if isinstance(value, LazyProb):
                    exact = index.probability(mask)
                    assert abs(value.approx - float(exact)) <= value.err

    def test_beliefs_batch_matches_serial(self):
        pps = random_protocol_system(17, mixed_level=0.5)
        index = SystemIndex.of(pps)
        phi = eventually(random_state_fact(23))
        agent = pps.agents[0]
        local = sorted(index.local_states(agent), key=repr)[0]
        serial = SystemIndex(
            random_protocol_system(17, mixed_level=0.5)
        ).beliefs_batch(agent, [phi], local)
        with ShardedExecutor(index, shards=3, payload=(phi,)) as ex:
            assert ex.beliefs_batch(agent, [phi], local) == serial
            auto = ex.beliefs_batch(agent, [phi], local, numeric="auto")
        assert [exact_value(b) for b in auto] == serial

    def test_serial_fallback_when_single_shard(self):
        index = _index(18)
        phi = eventually(random_state_fact(24))
        with ShardedExecutor(index, shards=1) as ex:
            assert ex.shard_count == 1
            assert ex._ensure_pool() is None
            assert ex.events_of([phi]) == index.events_of([phi])

    @pytest.mark.parametrize("repeat", range(3))
    def test_determinism_across_repeats_and_worker_counts(self, repeat):
        phi = eventually(random_state_fact(25))
        reference = None
        for workers in (1, 2, 4):
            index = SystemIndex(random_protocol_system(19, mixed_level=0.5))
            with ShardedExecutor(
                index, shards=4, payload=(phi,), max_workers=workers
            ) as ex:
                masks = ex.events_of([phi])
                measure = ex.probability(masks[0])
            if reference is None:
                reference = (masks, measure)
            assert (masks, measure) == reference

    def test_fork_copied_caches_never_leak_into_parent(self):
        # The regression the ISSUE names: worker processes inherit a
        # *copy* of the parent's memo caches and grow them during the
        # scan; nothing but the explicitly combined masks may come
        # back.  After a sharded run the parent's cache keys and masks
        # must equal a serial run's exactly.
        phi = eventually(random_state_fact(26))
        psi = random_run_fact(27)
        serial_index = SystemIndex(random_protocol_system(20, mixed_level=0.5))
        serial_index.events_of([phi, psi])
        sharded_index = SystemIndex(random_protocol_system(20, mixed_level=0.5))
        with ShardedExecutor(sharded_index, shards=3, payload=(phi, psi)) as ex:
            ex.events_of([phi, psi])
        assert sharded_index._fact_masks == serial_index._fact_masks
        assert set(sharded_index._slice_masks) == set(serial_index._slice_masks)
        assert sharded_index._action_free == serial_index._action_free

    def test_memo_false_leaves_parent_caches_untouched(self):
        phi = eventually(random_state_fact(28))
        index = SystemIndex(random_protocol_system(21, mixed_level=0.5))
        serial = index.events_of([phi], memo=False)
        assert not index._fact_masks
        with ShardedExecutor(index, shards=3, payload=(phi,)) as ex:
            assert ex.events_of([phi], memo=False) == serial
        assert not index._fact_masks


# ----------------------------------------------------------------------
# Parallel sweep rows + NumericStats multi-process correctness
# ----------------------------------------------------------------------


def _sweep_case(seed: int):
    pps = random_protocol_system(seed, mixed_level=0.5)
    agent = pps.agents[0]
    action = proper_actions_of(pps, agent)[0]
    phi = eventually(random_state_fact(seed + 40))
    thresholds = [Fraction(k, 12) for k in range(13)] + [Fraction(1, 2)]
    return pps, agent, phi, action, thresholds


class TestParallelSweep:
    @pytest.mark.parametrize("numeric", ("exact", "auto", "float"))
    def test_rows_identical_to_serial(self, numeric):
        pps, agent, phi, action, thresholds = _sweep_case(23)
        serial = refrain_threshold_sweep(
            pps, agent, phi, action, thresholds, numeric=numeric
        )
        pps2, agent, phi, action, thresholds = _sweep_case(23)
        parallel = refrain_threshold_sweep(
            pps2, agent, phi, action, thresholds, numeric=numeric, parallel=3
        )
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a["threshold"] == b["threshold"]
            for column in ("achieved", "coverage"):
                if numeric == "float":
                    assert a[column] == b[column]
                else:
                    assert exact_value(a[column]) == exact_value(b[column])

    def test_worker_count_invariance(self):
        rows = []
        for workers in (2, 4):
            pps, agent, phi, action, thresholds = _sweep_case(23)
            result = refrain_threshold_sweep(
                pps, agent, phi, action, thresholds,
                numeric="auto", parallel=workers,
            )
            rows.append(
                [
                    (row["threshold"], exact_value(row["achieved"]),
                     exact_value(row["coverage"]))
                    for row in result
                ]
            )
        assert rows[0] == rows[1]

    def test_numeric_stats_totals_pinned_serial_vs_sharded(self):
        # The latent-bug satellite: per-worker counters must be summed
        # into the parent on combine, not silently dropped with the
        # fork — auto-mode escalation counts are part of the sweep's
        # observable contract.
        pps, agent, phi, action, thresholds = _sweep_case(23)
        reset_numeric_stats()
        serial = refrain_threshold_sweep(
            pps, agent, phi, action, thresholds, numeric="auto"
        )
        serial_stats = numeric_stats()
        pps2, agent, phi, action, thresholds = _sweep_case(23)
        reset_numeric_stats()
        parallel = refrain_threshold_sweep(
            pps2, agent, phi, action, thresholds, numeric="auto", parallel=3
        )
        parallel_stats = numeric_stats()
        assert serial_stats == parallel_stats
        assert [exact_value(r["achieved"]) for r in serial] == [
            exact_value(r["achieved"]) for r in parallel
        ]

    def test_parallel_one_and_none_never_fork(self, monkeypatch):
        import importlib

        sweep_module = importlib.import_module("repro.analysis.sweep")

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("parallel path taken for parallel<=1")

        monkeypatch.setattr(sweep_module, "_parallel_rows", explode)
        pps, agent, phi, action, thresholds = _sweep_case(23)
        rows = refrain_threshold_sweep(pps, agent, phi, action, thresholds)
        assert len(rows) == len(thresholds)
        pps2, agent, phi, action, thresholds = _sweep_case(23)
        rows1 = refrain_threshold_sweep(
            pps2, agent, phi, action, thresholds, parallel=1
        )
        assert [r["threshold"] for r in rows] == [r["threshold"] for r in rows1]
