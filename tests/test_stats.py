"""Unit tests for the statistics helpers."""

import math

import pytest

from repro.analysis.stats import (
    Estimate,
    hoeffding_halfwidth,
    mean,
    normal_halfwidth,
    variance,
)


class TestMoments:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_variance_of_constant_is_zero(self):
        assert variance([5.0, 5.0, 5.0]) == 0.0

    def test_variance_small_sample(self):
        assert variance([7.0]) == 0.0

    def test_variance_unbiased(self):
        assert variance([0.0, 2.0]) == 2.0  # ((0-1)^2 + (2-1)^2) / 1


class TestIntervals:
    def test_normal_halfwidth_shrinks_with_n(self):
        narrow = normal_halfwidth([0.0, 1.0] * 500)
        wide = normal_halfwidth([0.0, 1.0] * 5)
        assert narrow < wide

    def test_normal_halfwidth_empty_rejected(self):
        with pytest.raises(ValueError):
            normal_halfwidth([])

    def test_hoeffding_formula(self):
        value = hoeffding_halfwidth(1000, delta=0.05)
        assert value == pytest.approx(math.sqrt(math.log(40.0) / 2000.0))

    def test_hoeffding_validates(self):
        with pytest.raises(ValueError):
            hoeffding_halfwidth(0)
        with pytest.raises(ValueError):
            hoeffding_halfwidth(10, delta=0)


class TestEstimate:
    def test_from_samples(self):
        est = Estimate.from_samples([0.0, 1.0, 1.0, 0.0])
        assert est.value == 0.5
        assert est.n == 4

    def test_consistent_with(self):
        est = Estimate.from_samples([1.0] * 100)
        assert est.consistent_with(1.0)
        assert not est.consistent_with(0.0)

    def test_str_includes_n(self):
        assert "n=4" in str(Estimate.from_samples([0.0, 1.0, 1.0, 0.0]))
