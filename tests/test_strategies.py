"""Unit tests for belief-guided transforms (Section 8)."""

from fractions import Fraction

from repro import achieved_probability, performing_runs
from repro.protocols import copy_tree, refrain_below_threshold, relabel_actions
from repro.core.pps import PPS
from repro.apps.firing_squad import ALICE, FIRE, both_fire


class TestCopyTree:
    def test_structure_preserved(self, firing_squad):
        copy = copy_tree(firing_squad.root)
        clone = PPS(firing_squad.agents, copy, name="clone")
        assert clone.run_count() == firing_squad.run_count()
        assert sorted(r.prob for r in clone.runs) == sorted(
            r.prob for r in firing_squad.runs
        )

    def test_nodes_are_fresh_objects(self, firing_squad):
        copy = copy_tree(firing_squad.root)
        assert copy is not firing_squad.root
        assert copy.children[0] is not firing_squad.root.children[0]

    def test_mutating_copy_leaves_original_alone(self, firing_squad):
        copy = copy_tree(firing_squad.root)
        original_action = dict(firing_squad.root.children[0].children[0].via_action)
        copy.children[0].children[0].via_action = {"alice": "tampered"}
        assert (
            firing_squad.root.children[0].children[0].via_action == original_action
        )


class TestRelabel:
    def test_identity_relabel(self, firing_squad):
        relabelled = relabel_actions(firing_squad, lambda node, via: via)
        assert achieved_probability(
            relabelled, ALICE, both_fire(), FIRE
        ) == achieved_probability(firing_squad, ALICE, both_fire(), FIRE)

    def test_rename_action(self, firing_squad):
        def rename(node, via):
            if via.get(ALICE) == FIRE:
                via[ALICE] = "launch"
            return via

        renamed = relabel_actions(firing_squad, rename)
        assert not performing_runs(renamed, ALICE, FIRE)
        assert performing_runs(renamed, ALICE, "launch")


class TestRefrainTransform:
    def test_reproduces_section_8_improvement(self, firing_squad):
        # Alice refrains whenever her belief is below the 0.95 spec
        # threshold — exactly: she skips firing on 'No'.
        improved = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), "0.95"
        )
        assert achieved_probability(
            improved, ALICE, both_fire(), FIRE
        ) == Fraction(990, 991)

    def test_matches_directly_built_improved_protocol(
        self, firing_squad, firing_squad_improved
    ):
        transformed = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), "0.95"
        )
        assert achieved_probability(
            transformed, ALICE, both_fire(), FIRE
        ) == achieved_probability(firing_squad_improved, ALICE, both_fire(), FIRE)

    def test_threshold_zero_changes_nothing(self, firing_squad):
        unchanged = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), 0
        )
        assert achieved_probability(
            unchanged, ALICE, both_fire(), FIRE
        ) == Fraction(99, 100)

    def test_probabilities_preserved(self, firing_squad):
        improved = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), "0.95"
        )
        assert sorted(r.prob for r in improved.runs) == sorted(
            r.prob for r in firing_squad.runs
        )

    def test_custom_replacement_label(self, firing_squad):
        improved = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), "0.95", replacement="hold"
        )
        assert performing_runs(improved, ALICE, "hold")
