"""Unit tests for the sweep harness and report rendering."""

from fractions import Fraction

import pytest

from repro.analysis.report import (
    ExperimentRecord,
    format_experiments,
    render_tree,
)
from repro.analysis.sweep import format_table, format_value, sweep


class TestSweep:
    def test_cartesian_traversal(self):
        rows = sweep(
            {"a": [1, 2], "b": ["x", "y"]},
            lambda a, b: {"label": f"{a}{b}"},
        )
        assert len(rows) == 4
        assert {row["label"] for row in rows} == {"1x", "1y", "2x", "2y"}

    def test_parameters_merged_into_rows(self):
        rows = sweep({"n": [3]}, lambda n: {"square": n * n})
        assert rows == [{"n": 3, "square": 9}]

    def test_deterministic_order(self):
        one = sweep({"a": [1, 2], "b": [3, 4]}, lambda a, b: {})
        two = sweep({"a": [1, 2], "b": [3, 4]}, lambda a, b: {})
        assert one == two

    def test_result_key_colliding_with_parameter_raises(self):
        # Regression: row.update(result) silently overwrote the grid
        # parameter column.
        with pytest.raises(ValueError, match="overwrite grid parameter"):
            sweep({"n": [1, 2]}, lambda n: {"n": n * n})

    def test_batch_collision_also_raises(self):
        with pytest.raises(ValueError, match="overwrite grid parameter"):
            sweep(
                {"n": [1, 2]},
                batch_row_fn=lambda points: [{"n": 0} for _ in points],
            )


class TestBatchSweep:
    def test_batch_row_fn_receives_all_points_in_order(self):
        seen = []

        def batch(points):
            seen.extend(points)
            return [{"double": point["n"] * 2} for point in points]

        rows = sweep({"n": [1, 2, 3]}, batch_row_fn=batch)
        assert seen == [{"n": 1}, {"n": 2}, {"n": 3}]
        assert rows == [
            {"n": 1, "double": 2},
            {"n": 2, "double": 4},
            {"n": 3, "double": 6},
        ]

    def test_batch_matches_per_row_path(self):
        grid = {"a": [1, 2], "b": [3, 4]}
        per_row = sweep(grid, lambda a, b: {"sum": a + b})
        batched = sweep(
            grid,
            batch_row_fn=lambda points: [
                {"sum": point["a"] + point["b"]} for point in points
            ],
        )
        assert per_row == batched

    def test_wrong_result_count_raises(self):
        with pytest.raises(ValueError, match="1 results for 2 grid points"):
            sweep({"n": [1, 2]}, batch_row_fn=lambda points: [{}])

    def test_exactly_one_row_fn_required(self):
        with pytest.raises(TypeError):
            sweep({"n": [1]})
        with pytest.raises(TypeError):
            sweep({"n": [1]}, lambda n: {}, batch_row_fn=lambda points: [{}])


class TestFormatting:
    def test_format_value_fraction(self):
        assert format_value(Fraction(1, 3)) == "1/3 (~0.333333)"

    def test_format_value_integral_fraction(self):
        assert format_value(Fraction(4, 2)) == "2"

    def test_format_value_bool(self):
        assert format_value(True) == "yes"

    def test_format_table_alignment(self):
        rows = [{"x": 1, "y": "abc"}, {"x": 22, "y": "d"}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "x" in lines[1] and "y" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_format_table_column_selection(self):
        rows = [{"x": 1, "y": 2}]
        table = format_table(rows, columns=["y"])
        assert "x" not in table.splitlines()[0]


class TestRenderTree:
    def test_contains_all_nodes(self, figure1):
        art = render_tree(figure1)
        assert "(root)" in art
        assert art.count("t=0") == 1
        assert art.count("t=1") == 2

    def test_action_labels_shown(self, figure1):
        art = render_tree(figure1)
        assert "alpha" in art

    def test_truncation(self, firing_squad):
        art = render_tree(firing_squad, max_nodes=5)
        assert "truncated" in art


class TestExperimentRecords:
    def test_match_detection(self):
        record = ExperimentRecord.of("E1", "mu", "99/100", Fraction(99, 100))
        assert record.matches

    def test_mismatch_detection(self):
        record = ExperimentRecord.of("E1", "mu", "99/100", Fraction(1, 2))
        assert not record.matches

    def test_no_claim_is_vacuous_match(self):
        record = ExperimentRecord.of("E9", "derived", None, Fraction(1, 2))
        assert record.matches

    def test_table_rendering(self):
        records = [
            ExperimentRecord.of("E1", "mu(both|fireA)", "99/100", "99/100"),
            ExperimentRecord.of("E1", "wrong", "1/2", "1/3"),
        ]
        table = format_experiments(records)
        assert "OK" in table and "MISMATCH" in table
