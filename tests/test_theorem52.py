"""Integration tests for the Theorem 5.2 construction (experiment E4)."""

from fractions import Fraction

import pytest

from repro import (
    achieved_probability,
    belief_at_action,
    check_lemma_5_1,
    check_theorem_6_2,
    expected_belief,
    is_deterministic_action,
    is_local_state_independent,
    threshold_met_measure,
)
from repro.apps.theorem52 import (
    AGENT_I,
    AGENT_J,
    ALPHA,
    bit_is_one,
    build_theorem52,
    build_theorem52_protocol,
    expected_off_threshold_belief,
)


class TestConstructionAtPaperParameters:
    def test_constraint_holds_with_equality(self, theorem52):
        assert achieved_probability(
            theorem52, AGENT_I, bit_is_one(), ALPHA
        ) == Fraction(9, 10)

    def test_threshold_met_measure_is_epsilon(self, theorem52):
        assert threshold_met_measure(
            theorem52, AGENT_I, bit_is_one(), ALPHA, "0.9"
        ) == Fraction(1, 10)

    def test_common_runs_belief_is_p_minus_eps_over_one_minus_eps(self, theorem52):
        values = {
            belief_at_action(theorem52, AGENT_I, bit_is_one(), ALPHA, run)
            for run in theorem52.runs
        }
        assert values == {Fraction(8, 9), Fraction(1)}

    def test_rare_run_has_certain_belief(self, theorem52):
        rare = [
            run
            for run in theorem52.runs
            if belief_at_action(theorem52, AGENT_I, bit_is_one(), ALPHA, run) == 1
        ]
        assert len(rare) == 1
        assert rare[0].prob == Fraction(1, 10)

    def test_alpha_deterministic_hence_independent(self, theorem52):
        assert is_deterministic_action(theorem52, AGENT_I, ALPHA)
        assert is_local_state_independent(theorem52, bit_is_one(), AGENT_I, ALPHA)

    def test_expectation_identity_exact(self, theorem52):
        check = check_theorem_6_2(theorem52, AGENT_I, ALPHA, bit_is_one())
        assert check.applicable and check.conclusion

    def test_lemma_5_1_witness_is_the_rare_run(self, theorem52):
        check = check_lemma_5_1(theorem52, AGENT_I, ALPHA, bit_is_one(), "0.9")
        assert check.conclusion


@pytest.mark.parametrize(
    ("p", "epsilon"),
    [("1/2", "1/4"), ("3/4", "1/10"), ("0.9", "0.01"), ("0.99", "0.5")],
)
class TestParametricSweep:
    def test_mu_equals_p(self, p, epsilon):
        system = build_theorem52(p, epsilon)
        assert achieved_probability(
            system, AGENT_I, bit_is_one(), ALPHA
        ) == Fraction(p)

    def test_met_measure_equals_epsilon(self, p, epsilon):
        system = build_theorem52(p, epsilon)
        assert threshold_met_measure(
            system, AGENT_I, bit_is_one(), ALPHA, p
        ) == Fraction(epsilon)

    def test_off_threshold_belief_formula(self, p, epsilon):
        system = build_theorem52(p, epsilon)
        values = {
            belief_at_action(system, AGENT_I, bit_is_one(), ALPHA, run)
            for run in system.runs
        }
        assert expected_off_threshold_belief(p, epsilon) in values

    def test_expected_belief_equals_p(self, p, epsilon):
        system = build_theorem52(p, epsilon)
        assert expected_belief(system, AGENT_I, bit_is_one(), ALPHA) == Fraction(p)


class TestProtocolVersionAgrees:
    def test_same_headline_quantities(self):
        direct = build_theorem52("0.9", "0.1")
        via_protocol = build_theorem52_protocol("0.9", "0.1")
        for system in (direct, via_protocol):
            assert achieved_probability(
                system, AGENT_I, bit_is_one(), ALPHA
            ) == Fraction(9, 10)
            assert threshold_met_measure(
                system, AGENT_I, bit_is_one(), ALPHA, "0.9"
            ) == Fraction(1, 10)

    def test_same_run_distribution(self):
        direct = build_theorem52("3/4", "1/4")
        via_protocol = build_theorem52_protocol("3/4", "1/4")
        assert sorted(r.prob for r in direct.runs) == sorted(
            r.prob for r in via_protocol.runs
        )


class TestParameterValidation:
    def test_epsilon_must_be_below_p(self):
        with pytest.raises(ValueError):
            build_theorem52("1/4", "1/2")

    def test_degenerate_p_rejected(self):
        with pytest.raises(ValueError):
            build_theorem52(1, "1/2")

    def test_zero_epsilon_rejected(self):
        with pytest.raises(ValueError):
            build_theorem52("1/2", 0)

    def test_formula_validates_too(self):
        with pytest.raises(ValueError):
            expected_off_threshold_belief("1/4", "1/2")
