"""Unit tests for the theorem checkers (Sections 4-7 + appendix)."""

from fractions import Fraction

import pytest

from repro import (
    check_corollary_7_2,
    check_lemma_4_3,
    check_lemma_5_1,
    check_lemma_f_1,
    check_theorem_4_2,
    check_theorem_6_2,
    check_theorem_7_1,
    pak_level,
    state_fact,
)
from repro.apps.figure1 import phi_alpha, psi_not_alpha
from repro.apps.firing_squad import ALICE, FIRE, both_fire
from repro.apps.theorem52 import AGENT_I, ALPHA, bit_is_one


class TestTheorem42:
    def test_verified_on_firing_squad(self, firing_squad):
        check = check_theorem_4_2(firing_squad, ALICE, FIRE, both_fire(), 0)
        assert check.applicable and check.conclusion

    def test_premise_fails_on_figure1(self, figure1):
        # beta >= 1/2 always, but mu = 0: the independence premise is
        # what fails, so the implication is vacuous.
        check = check_theorem_4_2(figure1, "i", "alpha", psi_not_alpha(), "1/2")
        assert not check.premises["local-state-independent"]
        assert not check.conclusion
        assert check.verified  # vacuously

    def test_details_min_belief(self, firing_squad):
        check = check_theorem_4_2(firing_squad, ALICE, FIRE, both_fire(), "0.95")
        assert check.details["min-acting-belief"] == 0  # the 'No' state

    def test_threshold_respected(self, theorem52):
        # Belief >= 8/9 at every acting point; the conclusion must hold
        # with p = 8/9.
        check = check_theorem_4_2(
            theorem52, AGENT_I, ALPHA, bit_is_one(), Fraction(8, 9)
        )
        assert check.applicable and check.conclusion

    def test_str_roundtrip(self, theorem52):
        check = check_theorem_4_2(theorem52, AGENT_I, ALPHA, bit_is_one(), "1/2")
        assert "Theorem 4.2" in str(check)


class TestLemma43:
    def test_deterministic_action_branch(self, theorem52):
        check = check_lemma_4_3(theorem52, AGENT_I, ALPHA, bit_is_one())
        assert check.details["deterministic"]
        assert check.verified and check.conclusion

    def test_past_based_branch(self, figure1):
        fact = state_fact(lambda g: True)
        check = check_lemma_4_3(figure1, "i", "alpha", fact)
        assert check.details["past-based"]
        assert check.verified and check.conclusion

    def test_vacuous_when_neither(self, figure1):
        check = check_lemma_4_3(figure1, "i", "alpha", psi_not_alpha())
        assert not check.applicable
        assert check.verified


class TestLemma51:
    def test_witness_found_on_firing_squad(self, firing_squad):
        check = check_lemma_5_1(firing_squad, ALICE, FIRE, both_fire(), "0.95")
        assert check.conclusion
        assert check.details["witness-point"] is not None

    def test_witness_on_theorem52(self, theorem52):
        # mu = 0.9 >= 0.9, so some acting point must have belief >= 0.9
        # (the rare m'_j run, with belief 1).
        check = check_lemma_5_1(theorem52, AGENT_I, ALPHA, bit_is_one(), "0.9")
        assert check.conclusion

    def test_vacuous_when_constraint_unsatisfied(self, theorem52):
        check = check_lemma_5_1(theorem52, AGENT_I, ALPHA, bit_is_one(), "0.99")
        assert not check.premises["constraint-satisfied"]
        assert check.verified


class TestTheorem62:
    def test_exact_equality_firing_squad(self, firing_squad):
        check = check_theorem_6_2(firing_squad, ALICE, FIRE, both_fire())
        assert check.applicable
        assert check.details["achieved"] == check.details["expected-belief"]
        assert check.conclusion

    def test_exact_equality_theorem52(self, theorem52):
        check = check_theorem_6_2(theorem52, AGENT_I, ALPHA, bit_is_one())
        assert check.conclusion
        assert check.details["achieved"] == Fraction(9, 10)

    def test_figure1_identity_fails_without_independence(self, figure1):
        check = check_theorem_6_2(figure1, "i", "alpha", phi_alpha())
        assert not check.applicable  # independence premise fails
        assert not check.conclusion  # 1 != 1/2
        assert check.verified  # the implication still holds


class TestLemmaF1:
    def test_certainty_forces_belief_one(self, two_coin_tree):
        from repro import TRUE

        check = check_lemma_f_1(two_coin_tree, "obs", "observe", TRUE)
        assert check.applicable and check.conclusion

    def test_vacuous_below_one(self, firing_squad):
        check = check_lemma_f_1(firing_squad, ALICE, FIRE, both_fire())
        assert not check.premises["certain-constraint"]
        assert check.verified


class TestTheorem71:
    def test_firing_squad_bound(self, firing_squad):
        # mu = 0.99 = 1 - 0.1 * 0.1 -> with delta = eps = 0.1 the
        # premise binds exactly, and mu(beta >= 0.9 | fire) must be
        # >= 0.9 (it is 0.991).
        check = check_theorem_7_1(
            firing_squad, ALICE, FIRE, both_fire(), "0.1", "0.1"
        )
        assert check.applicable and check.conclusion
        assert check.details["strong-belief-measure"] == Fraction(991, 1000)

    def test_invalid_parameters_rejected(self, firing_squad):
        with pytest.raises(ValueError):
            check_theorem_7_1(firing_squad, ALICE, FIRE, both_fire(), 0, "0.5")
        with pytest.raises(ValueError):
            check_theorem_7_1(firing_squad, ALICE, FIRE, both_fire(), "0.5", 1)

    def test_vacuous_when_premise_fails(self, theorem52):
        # mu = 0.9 < 1 - 0.01: premise fails for delta = eps = 0.1.
        check = check_theorem_7_1(theorem52, AGENT_I, ALPHA, bit_is_one(), "0.1", "0.1")
        assert not check.premises["high-probability-constraint"]
        assert check.verified


class TestCorollary72:
    def test_firing_squad_pak(self, firing_squad):
        check = check_corollary_7_2(firing_squad, ALICE, FIRE, both_fire(), "0.1")
        assert check.applicable and check.conclusion

    def test_epsilon_zero_is_lemma_f1(self, two_coin_tree):
        from repro import TRUE

        check = check_corollary_7_2(two_coin_tree, "obs", "observe", TRUE, 0)
        assert check.applicable and check.conclusion

    def test_epsilon_one_trivial(self, firing_squad):
        check = check_corollary_7_2(firing_squad, ALICE, FIRE, both_fire(), 1)
        assert check.applicable and check.conclusion

    def test_negative_epsilon_rejected(self, firing_squad):
        with pytest.raises(ValueError):
            check_corollary_7_2(firing_squad, ALICE, FIRE, both_fire(), "-1/2")


class TestPakLevel:
    def test_paper_example(self):
        # threshold 0.99 -> level 0.9 (the paper's Section 7 reading).
        assert pak_level("0.99") == Fraction(9, 10)

    def test_boundaries(self):
        assert pak_level(0) == 0
        assert pak_level(1) == 1

    def test_three_quarters(self):
        assert pak_level("3/4") == Fraction(1, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pak_level("2")
