"""Tests for the belief-timeline utility (incl. the martingale property)."""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import eventually
from repro.analysis.random_systems import random_protocol_system, random_run_fact
from repro.analysis.timeline import belief_timeline, expected_belief_by_time
from repro.apps.firing_squad import ALICE, fire_bob


class TestTimelineOnFiringSquad:
    def test_covers_all_times(self, firing_squad):
        timeline = belief_timeline(firing_squad, ALICE, eventually(fire_bob()))
        assert set(timeline) == {0, 1, 2, 3}

    def test_time_zero_is_the_prior_split(self, firing_squad):
        timeline = belief_timeline(firing_squad, ALICE, eventually(fire_bob()))
        cells = timeline[0]
        # Two information states (go = 0 / go = 1), each with mass 1/2.
        assert len(cells) == 2
        assert all(cell.mass == Fraction(1, 2) for cell in cells)
        assert sorted(cell.belief for cell in cells) == [0, Fraction(99, 100)]

    def test_beliefs_spread_at_time_two(self, firing_squad):
        timeline = belief_timeline(firing_squad, ALICE, eventually(fire_bob()))
        beliefs = {cell.belief for cell in timeline[2]}
        # go=0 states and the Yes/No/nothing split.
        assert {Fraction(0), Fraction(99, 100), Fraction(1)} <= beliefs

    def test_masses_sum_to_one_per_time(self, firing_squad):
        timeline = belief_timeline(firing_squad, ALICE, eventually(fire_bob()))
        for cells in timeline.values():
            assert sum(cell.mass for cell in cells) == 1

    def test_martingale_for_run_fact(self, firing_squad):
        # E[belief] is constant over time for a fact about runs.
        expected = expected_belief_by_time(
            firing_squad, ALICE, eventually(fire_bob())
        )
        values = set(expected.values())
        assert values == {Fraction(99, 200)}  # mu(Bob eventually fires)


@settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_martingale_property_on_random_systems(seed):
    # The expected belief in a run fact under the agent's filtration is
    # a martingale — constant in time when all runs share the horizon.
    system = random_protocol_system(seed, horizon=2)
    lengths = {run.length for run in system.runs}
    phi = random_run_fact(seed + 30)
    expected = expected_belief_by_time(system, system.agents[0], phi)
    if len(lengths) == 1:  # common horizon: exact martingale
        assert len(set(expected.values())) == 1
    # Time 0 always averages to the prior.
    prior = sum(
        (run.prob for run in system.runs if phi.holds(system, run, 0)),
        start=Fraction(0),
    )
    assert expected[0] == prior
