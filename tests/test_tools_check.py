"""Tests for the static invariant analyzer (``repro.tools.check``).

Every rule gets a positive fixture (the rule fires), a negative fixture
(analogous clean code stays silent), and a suppressed fixture (an
inline ``# repro: allow[...]`` silences it).  A meta-test then runs the
analyzer over the live source tree and requires a clean strict pass —
the same gate CI enforces.
"""

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.tools import rules as _rules  # noqa: F401  (populates REGISTRY)
from repro.tools import check as check_cli
from repro.tools.framework import (
    CheckConfig,
    Finding,
    ProjectModel,
    REGISTRY,
    active_rules,
    apply_baseline,
    baseline_payload,
    check_source,
    load_baseline,
    render_json,
    render_text,
)

ROOT = Path(__file__).resolve().parents[1]


def run_rule(source, rule, config=None, rel_path="snippet.py", extra=()):
    """Run one rule (or several) over a dedented source snippet."""
    source = textwrap.dedent(source)
    config = config or CheckConfig()
    model = ProjectModel(config)
    try:
        model.add_file(rel_path, ast.parse(source))
    except SyntaxError:
        pass  # check_source reports it as a PARSE error

    for extra_path, extra_source in extra:
        model.add_file(extra_path, ast.parse(textwrap.dedent(extra_source)))
    ids = [rule] if isinstance(rule, str) else list(rule)
    return check_source(source, rel_path, config, model, active_rules(ids))


def rule_ids(result):
    return [finding.rule for finding in result.findings]


# ---------------------------------------------------------------------------
# Registry basics
# ---------------------------------------------------------------------------


def test_all_ten_rules_registered():
    assert {
        "RP001",
        "RP002",
        "RP003",
        "RP004",
        "RP005",
        "RP006",
        "RP007",
        "RP008",
        "RP009",
        "RP010",
    } <= set(REGISTRY)
    assert len(REGISTRY) >= 10


def test_active_rules_rejects_unknown_ids():
    with pytest.raises(KeyError):
        active_rules(["RP999"])


# ---------------------------------------------------------------------------
# RP001: float arithmetic in exact-core modules
# ---------------------------------------------------------------------------


def exact_core_config():
    return CheckConfig(exact_core=("snippet.py",), numeric_tiers=())


def test_rp001_fires_on_float_literal_call_and_math():
    result = run_rule(
        """
        import math
        HALF = 0.5
        def f(x):
            return float(x) + math.sqrt(2)
        """,
        "RP001",
        exact_core_config(),
    )
    assert rule_ids(result) == ["RP001", "RP001", "RP001"]


def test_rp001_fires_on_inexact_from_math_import():
    result = run_rule(
        "from math import sqrt\n", "RP001", exact_core_config()
    )
    assert rule_ids(result) == ["RP001"]


def test_rp001_clean_on_exact_arithmetic():
    result = run_rule(
        """
        import math
        from fractions import Fraction
        from math import gcd
        def f(a, b):
            return Fraction(a, b) + math.comb(b, 2) + gcd(a, b)
        """,
        "RP001",
        exact_core_config(),
    )
    assert result.findings == []


def test_rp001_exempts_fstring_display_conversion():
    result = run_rule(
        """
        def show(x):
            return f"{float(x):.6g}"
        """,
        "RP001",
        exact_core_config(),
    )
    assert result.findings == []


def test_rp001_silent_outside_exact_core():
    result = run_rule("HALF = 0.5\n", "RP001", CheckConfig())
    assert result.findings == []


def test_rp001_silent_in_sanctioned_numeric_tier():
    config = CheckConfig(exact_core=("snippet.py",), numeric_tiers=("snippet.py",))
    result = run_rule("HALF = 0.5\n", "RP001", config)
    assert result.findings == []


def test_rp001_suppressed_by_allow_comment():
    result = run_rule(
        "HALF = 0.5  # repro: allow[RP001] display constant\n",
        "RP001",
        exact_core_config(),
    )
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# RP002: Fact subclasses with an unpaired structural hook
# ---------------------------------------------------------------------------


def test_rp002_fires_on_structure_without_dependence():
    result = run_rule(
        """
        class Half(Fact):
            def _structure(self):
                return ("half",)
        """,
        "RP002",
    )
    assert rule_ids(result) == ["RP002"]
    assert "Half" in result.findings[0].message


def test_rp002_fires_on_dependence_without_structure():
    result = run_rule(
        """
        class Half(Fact):
            def _action_dependence(self):
                return False
        """,
        "RP002",
    )
    assert rule_ids(result) == ["RP002"]


def test_rp002_clean_when_paired_or_fully_inherited():
    result = run_rule(
        """
        class Paired(Fact):
            def _structure(self):
                return ("p",)
            def _action_dependence(self):
                return False

        class Inherited(Fact):
            pass

        class NotAFact:
            def _structure(self):
                return ()
        """,
        "RP002",
    )
    assert result.findings == []


def test_rp002_sees_inheritance_across_files():
    # Middle is defined in another scanned file; Leaf inherits its
    # _structure, so defining only _action_dependence pairs up fine.
    result = run_rule(
        """
        class Leaf(Middle):
            def _action_dependence(self):
                return False
        """,
        "RP002",
        extra=[
            (
                "other.py",
                """
                class Middle(Fact):
                    def _structure(self):
                        return ("m",)
                """,
            )
        ],
    )
    assert result.findings == []


def test_rp002_suppressed_by_comment_block_above_class():
    result = run_rule(
        """
        # repro: allow[RP002] action atom: the conservative default is
        # exactly right for this fact family.
        class Half(Fact):
            def _structure(self):
                return ("half",)
        """,
        "RP002",
    )
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# RP003: mutation of interned/immutable objects
# ---------------------------------------------------------------------------


def test_rp003_fires_on_method_mutation_of_immutable_class():
    result = run_rule(
        """
        class Node:
            def __init__(self, state):
                self.state = state
            def rewrite(self, state):
                self.state = state
        """,
        "RP003",
    )
    assert rule_ids(result) == ["RP003"]
    assert "rewrite" in result.findings[0].message


def test_rp003_memo_slot_backfill_is_sanctioned():
    result = run_rule(
        """
        class Node:
            def __hash__(self):
                self._hash = 7
                return self._hash
        """,
        "RP003",
    )
    assert result.findings == []


def test_rp003_fires_on_immutable_attr_assignment():
    result = run_rule(
        """
        def relabel(node, via):
            node.via_action = via
        """,
        "RP003",
    )
    assert rule_ids(result) == ["RP003"]


def test_rp003_constructor_assignment_is_clean():
    result = run_rule(
        """
        class Wrapper:
            def __init__(self, node, via):
                node.via_action = via
                self.node = node
        """,
        "RP003",
    )
    assert result.findings == []


def test_rp003_fires_on_object_setattr_outside_ctor():
    result = run_rule(
        """
        class Config:
            def poke(self, value):
                object.__setattr__(self, "env", value)
        """,
        "RP003",
    )
    assert rule_ids(result) == ["RP003"]


def test_rp003_object_setattr_memo_slot_or_ctor_is_clean():
    result = run_rule(
        """
        class Config:
            def __init__(self, env):
                object.__setattr__(self, "env", env)
            def __hash__(self):
                object.__setattr__(self, "_hash", 7)
                return self._hash
        """,
        "RP003",
    )
    assert result.findings == []


def test_rp003_suppressed_by_allow_comment():
    result = run_rule(
        """
        def relabel(node, via):
            # repro: allow[RP003] fresh private copy, not yet published
            node.via_action = via
        """,
        "RP003",
    )
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# RP004: engine fact-cache discipline
# ---------------------------------------------------------------------------


def engine_config():
    return CheckConfig(engine_modules=("snippet.py",))


def test_rp004_fires_on_unkeyed_and_unrecorded_write():
    result = run_rule(
        """
        class SystemIndex:
            def stash(self, fact):
                entry = self._compute(fact)
                self._belief_cache[entry] = 1
        """,
        "RP004",
        engine_config(),
    )
    # One finding for the missing structural key, one for the missing
    # _action_free record (the cache is inheritable).
    assert rule_ids(result) == ["RP004", "RP004"]


def test_rp004_fires_on_missing_action_free_record_only():
    result = run_rule(
        """
        class SystemIndex:
            def stash(self, fact, value):
                key = self._fact_key(fact)
                self._belief_cache[key] = value
        """,
        "RP004",
        engine_config(),
    )
    assert rule_ids(result) == ["RP004"]
    assert "_note_action_free" in result.findings[0].message


def test_rp004_clean_disciplined_write():
    result = run_rule(
        """
        class SystemIndex:
            def stash(self, fact, value):
                key = self._fact_key(fact)
                self._belief_cache[key] = value
                self._note_action_free(key, fact)
        """,
        "RP004",
        engine_config(),
    )
    assert result.findings == []


def test_rp004_non_inheritable_cache_needs_only_the_key():
    result = run_rule(
        """
        class SystemIndex:
            def stash(self, fact, value):
                key = self._cache_key(fact)
                self._independence_cache[key] = value
        """,
        "RP004",
        engine_config(),
    )
    assert result.findings == []


def test_rp004_blesses_pre_keyed_entries_from_parameter():
    result = run_rule(
        """
        class SystemIndex:
            def flush(self, pending):
                for key, value in pending:
                    self._independence_cache[key] = value
        """,
        "RP004",
        engine_config(),
    )
    assert result.findings == []


def test_rp004_silent_outside_engine_modules():
    result = run_rule(
        """
        class SystemIndex:
            def stash(self, fact):
                entry = self._compute(fact)
                self._belief_cache[entry] = 1
        """,
        "RP004",
        CheckConfig(engine_modules=("somewhere_else.py",)),
    )
    assert result.findings == []


# ---------------------------------------------------------------------------
# RP005: nondeterminism sources
# ---------------------------------------------------------------------------


def deterministic_config():
    return CheckConfig(deterministic_modules=("snippet.py",))


def test_rp005_fires_on_id_sort_set_iteration_and_global_rng():
    result = run_rule(
        """
        import random
        def compile_tree(nodes):
            ordered = sorted(nodes, key=id)
            for node in set(nodes):
                random.shuffle(node)
            return ordered
        """,
        "RP005",
        deterministic_config(),
    )
    assert rule_ids(result) == ["RP005", "RP005", "RP005"]


def test_rp005_fires_on_unseeded_random_instance():
    result = run_rule(
        """
        from random import Random
        def shuffler():
            return Random()
        """,
        "RP005",
        deterministic_config(),
    )
    assert rule_ids(result) == ["RP005"]


def test_rp005_clean_deterministic_idioms():
    result = run_rule(
        """
        from random import Random
        def compile_tree(nodes, seed):
            rng = Random(seed)
            ordered = sorted(nodes, key=lambda n: n.uid)
            for node in sorted(set(nodes), key=lambda n: n.uid):
                rng.shuffle(node)
            return ordered
        """,
        "RP005",
        deterministic_config(),
    )
    assert result.findings == []


def test_rp005_silent_outside_deterministic_modules():
    result = run_rule(
        "ordered = sorted([], key=id)\n", "RP005", CheckConfig()
    )
    assert result.findings == []


# ---------------------------------------------------------------------------
# RP006: bare asserts
# ---------------------------------------------------------------------------


def test_rp006_fires_on_bare_assert():
    result = run_rule(
        """
        def f(x):
            assert x > 0
            return x
        """,
        "RP006",
    )
    assert rule_ids(result) == ["RP006"]


def test_rp006_clean_on_typed_raise():
    result = run_rule(
        """
        def f(x):
            if x <= 0:
                raise ValueError(f"x must be positive, got {x}")
            return x
        """,
        "RP006",
    )
    assert result.findings == []


def test_rp006_skips_advisory_trees():
    source = "def f(x):\n    assert x > 0\n"
    config = CheckConfig()
    model = ProjectModel(config)
    model.add_file("bench.py", ast.parse(source))
    result = check_source(
        source, "bench.py", config, model, active_rules(["RP006"]), advisory=True
    )
    assert result.findings == []


def test_rp006_suppressed_with_justification():
    result = run_rule(
        """
        def f(x):
            # repro: allow[RP006] internal invariant (type-narrowing)
            assert x is not None
            return x
        """,
        "RP006",
    )
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# RP007: dropped numeric= knob
# ---------------------------------------------------------------------------

NUMERIC_HELPER = """
def helper(x, numeric="auto"):
    return x
"""


def test_rp007_fires_on_dropped_knob():
    result = run_rule(
        NUMERIC_HELPER
        + textwrap.dedent("""
        def outer(x, numeric="auto"):
            return helper(x)
        """),
        "RP007",
    )
    assert rule_ids(result) == ["RP007"]
    assert "helper" in result.findings[0].message


def test_rp007_clean_when_threaded():
    result = run_rule(
        NUMERIC_HELPER
        + textwrap.dedent("""
        def by_keyword(x, numeric="auto"):
            return helper(x, numeric=numeric)

        def by_position(x, numeric="auto"):
            return helper(x, numeric)

        def by_splat(x, numeric="auto", **kw):
            return helper(x, **kw)
        """),
        "RP007",
    )
    assert result.findings == []


def test_rp007_exempts_mode_decided_branches():
    result = run_rule(
        NUMERIC_HELPER
        + textwrap.dedent("""
        def outer(x, numeric="auto"):
            if numeric == "exact":
                return helper(x)
            return helper(x, numeric=numeric)
        """),
        "RP007",
    )
    assert result.findings == []


def test_rp007_silent_without_numeric_parameter():
    result = run_rule(
        NUMERIC_HELPER
        + textwrap.dedent("""
        def outer(x):
            return helper(x)
        """),
        "RP007",
    )
    assert result.findings == []


def test_rp007_nested_function_charged_to_its_own_scope():
    result = run_rule(
        NUMERIC_HELPER
        + textwrap.dedent("""
        def outer(x, numeric="auto"):
            def inner(y, numeric="auto"):
                return helper(y)
            return inner(x, numeric=numeric)
        """),
        "RP007",
    )
    # Only inner() drops the knob; outer() threads it to inner().
    assert rule_ids(result) == ["RP007"]
    assert "inner()" in result.findings[0].message


def test_rp007_suppressed_by_allow_comment():
    result = run_rule(
        NUMERIC_HELPER
        + textwrap.dedent("""
        def outer(x, numeric="auto"):
            # repro: allow[RP007] mode-independent verdict by contract
            return helper(x)
        """),
        "RP007",
    )
    assert result.findings == []
    assert result.suppressed == 1



# ---------------------------------------------------------------------------
# RP008: nondeterministic shard-combine order
# ---------------------------------------------------------------------------


def shard_config():
    return CheckConfig(shard_modules=("snippet.py",))


def test_rp008_fires_on_set_iteration_in_combine_fold():
    result = run_rule(
        """
        def combine_masks(parts):
            out = 0
            for mask in set(parts):
                out |= mask
            return out
        """,
        "RP008",
        shard_config(),
    )
    assert rule_ids(result) == ["RP008"]
    assert "combine_masks()" in result.findings[0].message


def test_rp008_fires_on_set_comprehension_iterable():
    result = run_rule(
        """
        def merge_errors(parts):
            return [err for err in {p.err for p in parts} if err]
        """,
        "RP008",
        shard_config(),
    )
    assert rule_ids(result) == ["RP008"]
    assert "merge_errors()" in result.findings[0].message


def test_rp008_fires_on_id_keyed_sort():
    result = run_rule(
        """
        def absorb_deltas(deltas):
            for delta in sorted(deltas, key=id):
                delta.apply()
        """,
        "RP008",
        shard_config(),
    )
    assert rule_ids(result) == ["RP008"]
    assert "absorb_deltas()" in result.findings[0].message


def test_rp008_clean_on_index_ordered_folds():
    result = run_rule(
        """
        def combine_totals(parts):
            total = 0
            for part in parts:
                total += part
            return total

        def gather_results(shards):
            return [s.result for s in sorted(shards, key=lambda s: s.index)]
        """,
        "RP008",
        shard_config(),
    )
    assert result.findings == []


def test_rp008_silent_outside_combine_scope():
    # Set iteration in a non-combine helper of a shard module is
    # RP005's business (order of *shard folds* is RP008's only claim).
    result = run_rule(
        """
        def collect(parts):
            return [p for p in set(parts)]
        """,
        "RP008",
        shard_config(),
    )
    assert result.findings == []


def test_rp008_silent_outside_shard_modules():
    result = run_rule(
        """
        def combine_masks(parts):
            for mask in set(parts):
                pass
        """,
        "RP008",
        CheckConfig(),
    )
    assert result.findings == []


def test_rp008_suppressed_by_allow_comment():
    result = run_rule(
        """
        def combine_masks(parts):
            # repro: allow[RP008] masks OR-combine order-insensitively
            for mask in set(parts):
                pass
        """,
        "RP008",
        shard_config(),
    )
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# RP009: weight-split dependency classification and invalidation order
# ---------------------------------------------------------------------------


def weight_split_config():
    return CheckConfig(weight_split_modules=("snippet.py",))


WEIGHT_SPLIT_TABLES = """
class SystemIndex:
    DEPENDENCY_CLASS = {"_weights": "weight", "run_count": "shape"}
    BOOKKEEPING_ATTRS = frozenset({"pps"})
"""


def test_rp009_fires_on_unclassified_attribute():
    result = run_rule(
        WEIGHT_SPLIT_TABLES
        + textwrap.dedent("""
            def __init__(self, pps):
                self.pps = pps
                self._weights = [1]
                self._mystery_cache = {}
        """).replace("\n", "\n    "),
        "RP009",
        weight_split_config(),
    )
    assert rule_ids(result) == ["RP009"]
    assert "_mystery_cache" in result.findings[0].message


def test_rp009_fires_on_set_iteration_in_derived_path():
    result = run_rule(
        WEIGHT_SPLIT_TABLES
        + textwrap.dedent("""
            def derived(cls, pps, parent):
                for attr in {"_weights", "run_count"}:
                    pass
        """).replace("\n", "\n    "),
        "RP009",
        weight_split_config(),
    )
    assert rule_ids(result) == ["RP009"]
    assert "derived()" in result.findings[0].message


def test_rp009_fires_on_id_sort_in_invalidation_path():
    result = run_rule(
        """
        def invalidate_measures(index, caches):
            for cache in sorted(caches, key=id):
                cache.clear()
        """,
        "RP009",
        weight_split_config(),
    )
    assert rule_ids(result) == ["RP009"]
    assert "invalidate_measures()" in result.findings[0].message


def test_rp009_clean_on_classified_attrs_and_table_iteration():
    result = run_rule(
        WEIGHT_SPLIT_TABLES
        + textwrap.dedent("""
            def __init__(self, pps):
                self.pps = pps
                self._weights = [1]

            def derived(cls, pps, parent):
                for attr, kind in cls.DEPENDENCY_CLASS.items():
                    pass
        """).replace("\n", "\n    "),
        "RP009",
        weight_split_config(),
    )
    assert result.findings == []


def test_rp009_attr_check_needs_the_declaring_class():
    # A class without the dependency tables (another module's helper)
    # is outside half (a)'s claim; only marked functions are checked.
    result = run_rule(
        """
        class Helper:
            def __init__(self):
                self._scratch = {}
        """,
        "RP009",
        weight_split_config(),
    )
    assert result.findings == []


def test_rp009_silent_outside_weight_split_modules():
    result = run_rule(
        WEIGHT_SPLIT_TABLES
        + textwrap.dedent("""
            def __init__(self, pps):
                self._mystery_cache = {}
        """).replace("\n", "\n    "),
        "RP009",
        CheckConfig(),
    )
    assert result.findings == []


def test_rp009_suppressed_by_allow_comment():
    result = run_rule(
        WEIGHT_SPLIT_TABLES
        + textwrap.dedent("""
            def __init__(self, pps):
                # repro: allow[RP009] scratch slot, never seen by derived()
                self._scratch = {}
        """).replace("\n", "\n    "),
        "RP009",
        weight_split_config(),
    )
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# RP010: silent degradation on the execution stack
# ---------------------------------------------------------------------------


def execution_config():
    return CheckConfig(execution_modules=("snippet.py",))


def test_rp010_fires_on_silent_broad_except():
    result = run_rule(
        """
        def scan_leaves(index, leaves):
            try:
                return parallel_scan(index, leaves)
            except Exception:
                return serial_scan(index, leaves)
        """,
        "RP010",
        execution_config(),
    )
    assert rule_ids(result) == ["RP010"]
    assert "except Exception" in result.findings[0].message


def test_rp010_fires_on_bare_except_and_broad_tuple():
    result = run_rule(
        """
        def fallback(task):
            try:
                return task()
            except:
                return None

        def fallback2(task):
            try:
                return task()
            except (ValueError, BaseException):
                return None
        """,
        "RP010",
        execution_config(),
    )
    assert rule_ids(result) == ["RP010", "RP010"]
    assert "bare except" in result.findings[0].message


def test_rp010_clean_when_degradation_is_recorded():
    result = run_rule(
        """
        def scan_leaves(index, leaves):
            try:
                return parallel_scan(index, leaves)
            except Exception as error:
                record_degradation(
                    "execution", "parallel", "serial", "worker-failed",
                    repr(error),
                )
                return serial_scan(index, leaves)

        def retried(pool, chunk):
            try:
                return pool.submit(chunk)
            except Exception as error:
                faults.record_retry("submit", 0, 0, error)
                raise
        """,
        "RP010",
        execution_config(),
    )
    assert result.findings == []


def test_rp010_clean_on_reraise_and_narrow_excepts():
    result = run_rule(
        """
        def narrow(task):
            try:
                return task()
            except (OSError, ValueError):
                return None

        def reraised(task):
            try:
                return task()
            except Exception:
                raise RuntimeError("wrapped")
        """,
        "RP010",
        execution_config(),
    )
    assert result.findings == []


def test_rp010_silent_outside_execution_modules():
    result = run_rule(
        """
        def helper(task):
            try:
                return task()
            except Exception:
                return None
        """,
        "RP010",
        CheckConfig(),
    )
    assert result.findings == []


def test_rp010_suppressed_by_allow_comment():
    result = run_rule(
        """
        def probe(fact):
            try:
                pickle.dumps(fact)
            except Exception:  # repro: allow[RP010] probe only, caller records
                return None
        """,
        "RP010",
        execution_config(),
    )
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# Suppression machinery
# ---------------------------------------------------------------------------


def test_unused_allow_comment_is_reported():
    result = run_rule(
        "x = 1  # repro: allow[RP006] nothing here\n", "RP006"
    )
    assert result.findings == []
    assert result.unused_allows == [("snippet.py", 1)]


def test_docstring_mention_of_allow_syntax_is_inert():
    result = run_rule(
        '''
        """Suppress findings with ``# repro: allow[RP006] why``."""

        def f(x):
            assert x
        ''',
        "RP006",
    )
    # The docstring neither suppresses the assert nor registers as an
    # unused allow comment.
    assert rule_ids(result) == ["RP006"]
    assert result.unused_allows == []


def test_wildcard_allow_suppresses_any_rule():
    result = run_rule(
        """
        def f(x):
            assert x  # repro: allow[*] fixture escape hatch
        """,
        "RP006",
    )
    assert result.findings == []
    assert result.suppressed == 1


def test_syntax_error_becomes_parse_finding():
    result = run_rule("def broken(:\n", "RP006")
    assert result.findings == []
    assert [finding.rule for finding in result.errors] == ["PARSE"]


# ---------------------------------------------------------------------------
# Baseline machinery
# ---------------------------------------------------------------------------


def test_baseline_roundtrip_ignores_line_drift(tmp_path):
    finding = Finding("RP006", "pkg/mod.py", 10, "bare assert ...")
    path = tmp_path / "baseline.json"
    path.write_text(baseline_payload([finding]), encoding="utf-8")
    baseline = load_baseline(path)
    moved = Finding("RP006", "pkg/mod.py", 99, "bare assert ...")
    changed = Finding("RP006", "pkg/mod.py", 10, "different message")
    fresh, grandfathered = apply_baseline([moved, changed], baseline)
    assert fresh == [changed]
    assert grandfathered == 1


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == set()


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


def make_results():
    strict = run_rule("def f(x):\n    assert x\n", "RP006")
    advisory = run_rule(
        "def g(node, via):\n    node.via_action = via\n", "RP003"
    )
    for finding in advisory.findings:
        object.__setattr__(finding, "advisory", True)
    return strict, advisory


def test_render_text_layout():
    strict, advisory = make_results()
    text = render_text(strict, advisory, active_rules(["RP003", "RP006"]))
    assert "snippet.py:2: RP006" in text
    assert "advisory (non-blocking):" in text
    assert "1 finding(s)" in text and "1 advisory" in text


def test_render_json_is_machine_readable():
    strict, advisory = make_results()
    payload = json.loads(
        render_json(strict, advisory, active_rules(["RP003", "RP006"]))
    )
    assert payload["findings"][0]["rule"] == "RP006"
    assert payload["advisory"][0]["rule"] == "RP003"
    assert {entry["id"] for entry in payload["rules"]} == {"RP003", "RP006"}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def make_repo(tmp_path, source, *, bench=None):
    tree = tmp_path / "src" / "repro"
    tree.mkdir(parents=True)
    (tree / "mod.py").write_text(textwrap.dedent(source), encoding="utf-8")
    if bench is not None:
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench.py").write_text(
            textwrap.dedent(bench), encoding="utf-8"
        )
    return tmp_path


def test_cli_strict_exit_codes(tmp_path, capsys):
    root = make_repo(tmp_path, "def f(x):\n    assert x\n")
    assert check_cli.main(["--root", str(root)]) == 0
    assert check_cli.main(["--root", str(root), "--strict"]) == 1
    out = capsys.readouterr().out
    assert "src/repro/mod.py:2: RP006" in out


def test_cli_clean_tree_exits_zero(tmp_path):
    root = make_repo(tmp_path, "def f(x):\n    return x\n")
    assert check_cli.main(["--root", str(root), "--strict"]) == 0


def test_cli_advisory_findings_do_not_block(tmp_path, capsys):
    root = make_repo(
        tmp_path,
        "def f(x):\n    return x\n",
        bench="def g(node, via):\n    node.via_action = via\n",
    )
    assert check_cli.main(["--root", str(root), "--strict"]) == 0
    out = capsys.readouterr().out
    assert "advisory (non-blocking):" in out
    assert "benchmarks/bench.py:2: RP003" in out


def test_cli_write_baseline_grandfathers_findings(tmp_path, capsys):
    root = make_repo(tmp_path, "def f(x):\n    assert x\n")
    assert check_cli.main(["--root", str(root), "--write-baseline"]) == 0
    baseline = root / check_cli.BASELINE_NAME
    assert baseline.exists()
    capsys.readouterr()
    assert check_cli.main(["--root", str(root), "--strict"]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_cli_json_output(tmp_path, capsys):
    root = make_repo(tmp_path, "def f(x):\n    assert x\n")
    assert check_cli.main(["--root", str(root), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "RP006"


def test_cli_rule_selection_and_listing(tmp_path, capsys):
    root = make_repo(tmp_path, "def f(x):\n    assert x\n")
    assert (
        check_cli.main(["--root", str(root), "--strict", "--rules", "RP001"])
        == 0
    )
    assert check_cli.main(["--rules", "RP999"]) == 2
    capsys.readouterr()
    assert check_cli.main(["--list-rules"]) == 0
    listed = capsys.readouterr().out
    for rule_id in ("RP001", "RP008"):
        assert rule_id in listed


def test_cli_parse_error_exits_two(tmp_path):
    root = make_repo(tmp_path, "def broken(:\n")
    assert check_cli.main(["--root", str(root)]) == 2


# ---------------------------------------------------------------------------
# Meta: the live tree passes its own gate
# ---------------------------------------------------------------------------


def test_live_tree_passes_strict_analyzer(capsys):
    exit_code = check_cli.main(["--root", str(ROOT), "--strict"])
    output = capsys.readouterr().out
    assert exit_code == 0, output
    assert "0 finding(s)" in output
    assert "10 rule(s) active" in output


def test_committed_baseline_ships_empty():
    baseline = ROOT / check_cli.BASELINE_NAME
    assert baseline.exists()
    assert json.loads(baseline.read_text(encoding="utf-8")) == {"findings": []}
