"""Derived-system transform layer: overlays, inherited indices, parity.

Covers the PR 4 tentpole and satellites:

* ``copy_tree`` is iterative (deep trees can't hit ``RecursionError``)
  and keeps the historic pre-order uid contract;
* ``relabel_actions`` visits edges in deterministic BFS order;
* ``refrain_below_threshold`` raises ``ValueError`` (not a bare
  assert) when a matching performance sits on a root edge;
* ``materialize=True`` reproduces the legacy deep-copy path
  bit-identically (uid sequence, leaf order, probabilities);
* derived-vs-materialized Fraction-exact parity of measures, beliefs,
  achieved probabilities, and theorem verdicts on ≥18 random protocol
  systems plus the FS and judge apps;
* the derived index inherits exactly the label-independent tables and
  cache entries, and matches a cold rebuild of the same derived system.
"""

from __future__ import annotations

import sys
from collections import deque
from fractions import Fraction
from typing import Dict, Optional

import pytest

from repro import (
    achieved_probability,
    belief,
    belief_profile,
    check_theorem_4_2,
    check_theorem_6_2,
    performing_runs,
    probability,
    runs_satisfying,
)
from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_state_fact,
    tree_signature,
)
from repro.analysis.sweep import refrain_threshold_sweep
from repro.apps.firing_squad import (
    ALICE,
    BOB,
    FIRE,
    THRESHOLD,
    both_fire,
    build_firing_squad,
    derive_improved_firing_squad,
)
from repro.apps.judge import CONVICT, JUDGE, build_judge, guilty
from repro.core.atoms import TRUE, local_fact, performed
from repro.core.engine import SystemIndex
from repro.core.errors import ImproperActionError
from repro.core.facts import eventually
from repro.core.numeric import as_fraction
from repro.core.pps import (
    PPS,
    ActionOverlay,
    DerivedPPS,
    GlobalState,
    Node,
    OverlayRun,
)
from repro.protocols import copy_tree, refrain_below_threshold, relabel_actions


# ----------------------------------------------------------------------
# The legacy (pre-PR 4) transform, inlined as the bit-identity oracle.
# ----------------------------------------------------------------------


def _legacy_copy_tree(root: Node) -> Node:
    counter = [0]

    def clone(node: Node, parent: Optional[Node]) -> Node:
        copy = Node(
            uid=counter[0],
            depth=node.depth,
            state=node.state,
            prob_from_parent=node.prob_from_parent,
            via_action=dict(node.via_action) if node.via_action is not None else None,
            parent=parent,
        )
        counter[0] += 1
        copy.children = [clone(child, copy) for child in node.children]
        return copy

    return clone(root, None)


def _legacy_refrain(pps: PPS, agent, action, phi, threshold) -> PPS:
    bound = as_fraction(threshold)
    idx = pps.agent_index(agent)
    cache: Dict[object, bool] = {}

    def low_belief(local: object) -> bool:
        if local not in cache:
            cache[local] = belief(pps, agent, phi, local) < bound
        return cache[local]

    root = _legacy_copy_tree(pps.root)
    stack = [root]
    while stack:
        node = stack.pop()
        if node.via_action is not None:
            via = dict(node.via_action)
            if via.get(agent) == action and low_belief(
                node.parent.state.local(idx)
            ):
                via[agent] = "skip"
            node.via_action = via
        stack.extend(node.children)
    return PPS(pps.agents, root, name=f"{pps.name}-refrain[{action}]")


def _chain(depth: int) -> Node:
    """A single-path tree of the given depth (raw nodes, no PPS)."""
    root = Node(uid=0, depth=0, state=None)
    node = root
    for d in range(1, depth + 1):
        child = Node(
            uid=d,
            depth=d,
            state=GlobalState(env=None, locals=((d - 1, "x"),)),
            parent=node,
            via_action={"a": "step"} if d > 1 else None,
        )
        node.children.append(child)
        node = child
    return root


# ----------------------------------------------------------------------
# Satellite: iterative copy_tree
# ----------------------------------------------------------------------


class TestIterativeCopyTree:
    def test_deep_chain_beyond_recursion_limit(self):
        depth = sys.getrecursionlimit() + 500
        copy = copy_tree(_chain(depth))
        count = 0
        node: Optional[Node] = copy
        while node is not None:
            assert node.uid == count == node.depth
            count += 1
            node = node.children[0] if node.children else None
        assert count == depth + 1

    def test_matches_legacy_recursive_numbering(self, firing_squad):
        copy = PPS(firing_squad.agents, copy_tree(firing_squad.root), name="it")
        legacy = PPS(
            firing_squad.agents, _legacy_copy_tree(firing_squad.root), name="rec"
        )
        assert tree_signature(copy) == tree_signature(legacy)


# ----------------------------------------------------------------------
# Satellite: BFS relabel order
# ----------------------------------------------------------------------


class TestRelabelVisitOrder:
    def _expected_bfs_uids(self, pps: PPS):
        expected = []
        queue = deque([pps.root])
        while queue:
            node = queue.popleft()
            if pps.edge_action(node) is not None:
                expected.append((node.depth, node.uid))
            queue.extend(node.children)
        return expected

    def test_derived_path_visits_in_bfs_order(self, firing_squad):
        visited = []

        def record(node, via):
            visited.append((node.depth, node.uid))
            return via

        relabel_actions(firing_squad, record)
        assert visited == self._expected_bfs_uids(firing_squad)
        # BFS is depth-monotone by construction.
        assert [d for d, _ in visited] == sorted(d for d, _ in visited)

    def test_materialized_path_visits_in_bfs_order(self, firing_squad):
        depths = []

        def record(node, via):
            depths.append(node.depth)
            return via

        relabel_actions(firing_squad, record, materialize=True)
        assert depths == sorted(depths)
        assert len(depths) == len(self._expected_bfs_uids(firing_squad))


# ----------------------------------------------------------------------
# Satellite: loud failure on root-edge misuse
# ----------------------------------------------------------------------


class TestRootEdgeFailsLoudly:
    def test_value_error_names_the_offending_node(self):
        root = Node(uid=0, depth=0, state=None)
        # A (degenerate, hand-built) system recording an agent action
        # on the edge out of the root: there is no acting local state.
        child = Node(
            uid=1,
            depth=1,
            state=GlobalState(env=None, locals=((0, "s"),)),
            parent=root,
            via_action={"a": "go"},
        )
        root.children.append(child)
        pps = PPS(["a"], root, name="root-edge")
        with pytest.raises(ValueError, match="leaves the root"):
            refrain_below_threshold(pps, "a", "go", TRUE, "1/2")
        with pytest.raises(ValueError, match="node 1"):
            refrain_below_threshold(
                pps, "a", "go", TRUE, "1/2", materialize=True
            )

    def test_non_matching_root_edge_is_left_alone(self):
        root = Node(uid=0, depth=0, state=None)
        child = Node(
            uid=1,
            depth=1,
            state=GlobalState(env=None, locals=((0, "s"),)),
            parent=root,
            via_action={"a": "other"},
        )
        root.children.append(child)
        pps = PPS(["a"], root, name="root-edge-ok")
        derived = refrain_below_threshold(pps, "a", "go", TRUE, "1/2")
        assert len(derived.overlay) == 0


# ----------------------------------------------------------------------
# Escape hatch: bit-identity with the legacy deep-copy path
# ----------------------------------------------------------------------


class TestMaterializeBitIdentity:
    def test_firing_squad(self, firing_squad):
        phi = both_fire()
        legacy = _legacy_refrain(firing_squad, ALICE, FIRE, phi, THRESHOLD)
        hatch = refrain_below_threshold(
            firing_squad, ALICE, FIRE, phi, THRESHOLD, materialize=True
        )
        assert tree_signature(hatch) == tree_signature(legacy)
        assert [r.prob for r in hatch.runs] == [r.prob for r in legacy.runs]

    @pytest.mark.parametrize("seed", [2, 7, 11])
    def test_random_systems(self, seed):
        pps = random_protocol_system(seed)
        agent = pps.agents[0]
        actions = proper_actions_of(pps, agent)
        action = actions[seed % len(actions)]
        phi = random_state_fact(seed)
        legacy = _legacy_refrain(pps, agent, action, phi, "1/2")
        hatch = refrain_below_threshold(
            pps, agent, action, phi, "1/2", materialize=True
        )
        assert tree_signature(hatch) == tree_signature(legacy)

    def test_materializing_a_derived_system_bakes_the_overlay(
        self, firing_squad
    ):
        derived = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), THRESHOLD
        )
        # Identity relabel of the derived system, materialized: the
        # standalone copy must carry the overlay's labels.
        baked = relabel_actions(derived, lambda node, via: via, materialize=True)
        assert isinstance(baked, PPS) and not isinstance(baked, DerivedPPS)
        assert achieved_probability(baked, ALICE, both_fire(), FIRE) == Fraction(
            990, 991
        )


# ----------------------------------------------------------------------
# Tentpole: derived-vs-materialized parity
# ----------------------------------------------------------------------


def _assert_transform_parity(pps: PPS, agent, action, phi, threshold):
    """Derived and materialized transforms agree on every quantity."""
    derived = refrain_below_threshold(pps, agent, action, phi, threshold)
    materialized = refrain_below_threshold(
        pps, agent, action, phi, threshold, materialize=True
    )
    assert isinstance(derived, DerivedPPS)
    assert derived.root is pps.root  # node identity preserved

    # Measures: run distributions and performing events.
    assert [r.prob for r in derived.runs] == [r.prob for r in materialized.runs]
    for who in pps.agents:
        for act in SystemIndex.of(derived).actions_of(who) | SystemIndex.of(
            materialized
        ).actions_of(who):
            assert performing_runs(derived, who, act) == performing_runs(
                materialized, who, act
            )
            assert probability(
                derived, performing_runs(derived, who, act)
            ) == probability(materialized, performing_runs(materialized, who, act))

    # Beliefs: full profile of the condition for the acting agent.
    assert belief_profile(derived, agent, phi) == belief_profile(
        materialized, agent, phi
    )
    # ... and of an action-dependent fact.
    alpha = performed(agent, action)
    assert belief_profile(derived, agent, alpha) == belief_profile(
        materialized, agent, alpha
    )

    # Achieved probability (or identical refusal when fully stripped).
    still_performed = bool(performing_runs(derived, agent, action))
    assert still_performed == bool(performing_runs(materialized, agent, action))
    if still_performed:
        assert achieved_probability(
            derived, agent, phi, action
        ) == achieved_probability(materialized, agent, phi, action)
    else:
        with pytest.raises(ImproperActionError):
            achieved_probability(derived, agent, phi, action)
        with pytest.raises(ImproperActionError):
            achieved_probability(materialized, agent, phi, action)

    # Theorem verdicts.
    for check in (
        lambda system: check_theorem_6_2(system, agent, action, phi),
        lambda system: check_theorem_4_2(system, agent, action, phi, threshold),
    ):
        left, right = check(derived), check(materialized)
        assert left.premises == right.premises
        assert left.conclusion == right.conclusion
        assert left.verified and right.verified


class TestDerivedParity:
    @pytest.mark.parametrize("seed", range(18))
    def test_random_protocol_systems(self, seed):
        pps = random_protocol_system(
            seed, n_agents=2, horizon=2, mixed_level=(seed % 3) / 2
        )
        agent = pps.agents[seed % len(pps.agents)]
        actions = proper_actions_of(pps, agent)
        assert actions, "generator guarantees proper actions"
        action = actions[seed % len(actions)]
        phi = random_state_fact(seed)
        # Sweep thresholds from never-strips to strips-everything.
        for threshold in ("0", "1/3", "2/3", "1"):
            _assert_transform_parity(pps, agent, action, phi, threshold)

    def test_firing_squad_app(self, firing_squad):
        for threshold in ("0", "1/2", THRESHOLD, "0.995", "1"):
            _assert_transform_parity(
                firing_squad, ALICE, FIRE, both_fire(), threshold
            )

    def test_judge_app(self):
        judge = build_judge(signals=2, conviction_threshold=2)
        assert CONVICT in SystemIndex.of(judge).actions_of(JUDGE)
        for threshold in ("0", "0.7", "0.9", "1"):
            _assert_transform_parity(judge, JUDGE, CONVICT, guilty(), threshold)


# ----------------------------------------------------------------------
# Tentpole: derived index internals
# ----------------------------------------------------------------------


class TestDerivedIndexInheritance:
    def _derived_pair(self, firing_squad):
        derived = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), THRESHOLD
        )
        return SystemIndex.of(firing_squad), SystemIndex.of(derived), derived

    def test_label_independent_tables_shared_by_reference(self, firing_squad):
        parent, child, _ = self._derived_pair(firing_squad)
        assert child._weights is parent._weights
        assert child._prefix is parent._prefix
        assert child._prob_cache is parent._prob_cache
        assert child._node_ranges is parent._node_ranges
        assert child._alive is parent._alive
        assert child._local_occurrence is parent._local_occurrence
        assert child._partitions is parent._partitions
        assert child._event_cache is parent._event_cache
        assert child._component_cache is parent._component_cache

    def test_action_free_cache_entries_inherited(self):
        base = build_firing_squad()
        index = SystemIndex.of(base)
        go_up = eventually(local_fact(ALICE, lambda local: True, label="any"))
        runs_satisfying(base, go_up)  # prime the parent cache
        key = index._fact_key(go_up)
        assert key in index._fact_masks and key in index._action_free
        derived = refrain_below_threshold(
            base, ALICE, FIRE, both_fire(), THRESHOLD
        )
        child = SystemIndex.of(derived)
        assert child._fact_masks[key] == index._fact_masks[key]

    def test_action_dependent_cache_entries_invalidated(self):
        base = build_firing_squad()
        index = SystemIndex.of(base)
        alpha = performed(ALICE, FIRE)
        runs_satisfying(base, alpha)  # prime with an action-mentioning fact
        key = index._fact_key(alpha)
        assert key in index._fact_masks and key not in index._action_free
        derived = refrain_below_threshold(
            base, ALICE, FIRE, both_fire(), THRESHOLD
        )
        child = SystemIndex.of(derived)
        assert key not in child._fact_masks
        # Re-evaluated fresh, the masks genuinely differ (Alice no
        # longer fires on 'No').
        assert runs_satisfying(derived, alpha) != runs_satisfying(base, alpha)

    def test_belief_cache_inherited_for_state_facts(self):
        base = build_firing_squad()
        phi = eventually(local_fact(BOB, lambda local: True, label="bob-any"))
        local = next(iter(SystemIndex.of(base).state_cells(ALICE, FIRE)))
        belief(base, ALICE, phi, local)  # prime
        derived = refrain_below_threshold(base, ALICE, FIRE, both_fire(), "1")
        child = SystemIndex.of(derived)
        key = (ALICE, child._fact_key(phi), local)
        assert key in child._belief_cache
        assert belief(derived, ALICE, phi, local) == belief(base, ALICE, phi, local)

    def test_overlay_visible_through_accessors_not_nodes(self, firing_squad):
        _, _, derived = self._derived_pair(firing_squad)
        assert len(derived.overlay) == 1
        (node, via), = derived.overlay.items()
        assert via[ALICE] == "skip"
        # The shared node keeps the parent's label; the derived system
        # resolves the overlay.
        assert node.via_action[ALICE] == FIRE
        assert derived.edge_action(node)[ALICE] == "skip"
        assert firing_squad.edge_action(node)[ALICE] == FIRE
        # Runs share node tuples but answer actions through the overlay.
        run = next(
            r for r in derived.runs if node in r.nodes
        )
        assert isinstance(run, OverlayRun)
        assert run.nodes is firing_squad.runs[run.index].nodes
        t = node.time - 1
        assert run.action_of(ALICE, t) == "skip"
        assert firing_squad.runs[run.index].action_of(ALICE, t) == FIRE

    def test_derived_action_tables_match_cold_rebuild(self, firing_squad):
        derived = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), THRESHOLD
        )
        fast = SystemIndex.of(derived)
        fast._ensure_actions()
        cold = SystemIndex(derived)  # generic build through edge_action
        cold._ensure_actions()
        assert fast._performing == cold._performing
        assert fast._state_cells == cold._state_cells
        assert {k: sorted(v) for k, v in fast._action_records.items()} == {
            k: sorted(v) for k, v in cold._action_records.items()
        }
        assert fast._agent_actions == cold._agent_actions

    def test_chained_derivation_flattens(self, firing_squad):
        first = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), THRESHOLD
        )

        def rename(node, via):
            if via.get(ALICE) == FIRE:
                via[ALICE] = "launch"
            return via

        second = relabel_actions(first, rename)
        assert isinstance(second, DerivedPPS) and second.parent is first
        assert second.root is firing_squad.root
        # First transform's skip survives; remaining fires renamed.
        assert performing_runs(second, ALICE, "skip")
        assert performing_runs(second, ALICE, "launch")
        assert not performing_runs(second, ALICE, FIRE)
        # Quantities agree with materializing the whole chain.
        baked = relabel_actions(first, rename, materialize=True)
        assert probability(
            second, performing_runs(second, ALICE, "launch")
        ) == probability(baked, performing_runs(baked, ALICE, "launch"))

    def test_overlay_rejects_root(self, firing_squad):
        with pytest.raises(Exception, match="root"):
            ActionOverlay([(firing_squad.root, {ALICE: "x"})])

    def test_overlay_rejects_foreign_nodes(self, firing_squad):
        # Overrides bind by uid; a node from a *different* tree would
        # silently attach its label to the uid-colliding node here.
        other = build_firing_squad(loss="0.2")
        foreign = next(
            node for node in other.state_nodes() if node.via_action is not None
        )
        with pytest.raises(Exception, match="does not belong"):
            DerivedPPS(
                firing_squad,
                ActionOverlay([(foreign, dict(foreign.via_action))]),
            )

    def test_identity_keyed_request_gets_identity_keyed_index(self):
        # structural_keys=False must be honored even when the parent is
        # already indexed under structural keys (the bench baseline
        # pattern); the derived fast path would smuggle the parent's
        # mode in, so a cold build serves the request instead.
        base = build_firing_squad()
        assert SystemIndex.of(base).structural_keys is True
        derived = refrain_below_threshold(
            base, ALICE, FIRE, both_fire(), THRESHOLD
        )
        index = SystemIndex.of(derived, structural_keys=False)
        assert index.structural_keys is False
        assert achieved_probability(derived, ALICE, both_fire(), FIRE) == (
            Fraction(990, 991)
        )

    def test_derive_scales_with_overrides_not_records(self, firing_squad):
        # Overriding every fire edge at once must still strip cleanly
        # (the batched filter pass, not per-edge list.remove).
        derived = refrain_below_threshold(
            firing_squad, ALICE, FIRE, both_fire(), "2"
        )
        index = SystemIndex.of(derived)
        assert index.performing_mask(ALICE, FIRE) == 0
        assert (ALICE, FIRE) not in index._action_records
        # Former fire edges joined the (pre-existing) skip edges.
        parent_index = SystemIndex.of(firing_squad)
        assert index.performing_mask(ALICE, "skip") == (
            parent_index.performing_mask(ALICE, "skip")
            | parent_index.performing_mask(ALICE, FIRE)
        )


# ----------------------------------------------------------------------
# Consumers: FS' derivation and the threshold sweep
# ----------------------------------------------------------------------


class TestDeriveImprovedFiringSquad:
    def test_matches_directly_built_improved(self, firing_squad):
        derived = derive_improved_firing_squad(firing_squad)
        assert isinstance(derived, DerivedPPS)
        direct = build_firing_squad(improved=True)
        phi = both_fire()
        assert achieved_probability(derived, ALICE, phi, FIRE) == Fraction(990, 991)
        assert achieved_probability(derived, ALICE, phi, FIRE) == (
            achieved_probability(direct, ALICE, phi, FIRE)
        )
        assert probability(
            derived, performing_runs(derived, ALICE, FIRE)
        ) == probability(direct, performing_runs(direct, ALICE, FIRE))

    def test_materialize_escape_hatch(self):
        standalone = derive_improved_firing_squad(materialize=True)
        assert isinstance(standalone, PPS)
        assert not isinstance(standalone, DerivedPPS)
        assert achieved_probability(
            standalone, ALICE, both_fire(), FIRE
        ) == Fraction(990, 991)


class TestRefrainThresholdSweep:
    def test_derived_rows_equal_materialized_rows(self, firing_squad):
        thresholds = [Fraction(k, 20) for k in range(21)]
        derived_rows = refrain_threshold_sweep(
            firing_squad, ALICE, both_fire(), FIRE, thresholds
        )
        materialized_rows = refrain_threshold_sweep(
            firing_squad, ALICE, both_fire(), FIRE, thresholds, materialize=True
        )
        assert derived_rows == materialized_rows
        values = [row["achieved"] for row in derived_rows]
        coverage = [row["coverage"] for row in derived_rows]
        assert values[0] == Fraction(99, 100)
        assert values[-1] == 1
        assert values == sorted(values)
        assert coverage == sorted(coverage, reverse=True)

    def test_zero_threshold_row_is_the_original_protocol(self, firing_squad):
        (row,) = refrain_threshold_sweep(
            firing_squad, ALICE, both_fire(), FIRE, ["0"]
        )
        assert row["achieved"] == achieved_probability(
            firing_squad, ALICE, both_fire(), FIRE
        )
        assert row["coverage"] == probability(
            firing_squad, performing_runs(firing_squad, ALICE, FIRE)
        )
