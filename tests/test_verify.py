"""Unit tests for whole-system verification."""

import pytest

from repro.analysis.verify import (
    assert_theorems,
    verify_constraint,
    verify_system,
)
from repro.apps.firing_squad import ALICE, FIRE, both_fire
from repro.apps.figure1 import psi_not_alpha


class TestVerifyConstraint:
    def test_all_checkers_present(self, firing_squad):
        checks = verify_constraint(firing_squad, ALICE, FIRE, both_fire(), "0.95")
        assert set(checks) == {
            "theorem-4.2",
            "lemma-4.3",
            "lemma-5.1",
            "theorem-6.2",
            "lemma-F.1",
            "theorem-7.1",
            "corollary-7.2",
        }

    def test_all_verified_on_firing_squad(self, firing_squad):
        checks = verify_constraint(firing_squad, ALICE, FIRE, both_fire(), "0.95")
        assert all(check.verified for check in checks.values())

    def test_all_verified_even_for_dependent_fact(self, figure1):
        # Premises fail, so everything is vacuously verified.
        checks = verify_constraint(figure1, "i", "alpha", psi_not_alpha(), "1/2")
        assert all(check.verified for check in checks.values())
        assert not checks["theorem-6.2"].applicable


class TestAssertTheorems:
    def test_passes_on_valid_system(self, firing_squad):
        assert_theorems(firing_squad, ALICE, FIRE, both_fire(), "0.95")

    def test_detects_fabricated_violation(self, firing_squad, monkeypatch):
        # Sanity check that the assertion would actually fire: sabotage
        # one checker to report a failed implication.
        import repro.analysis.verify as verify_module

        class Broken:
            theorem = "sabotaged"
            verified = False
            details = {}

            def __str__(self):
                return "sabotaged"

        monkeypatch.setitem(
            verify_module.verify_constraint.__globals__,
            "check_theorem_6_2",
            lambda *args, **kwargs: Broken(),
        )
        with pytest.raises(AssertionError):
            assert_theorems(firing_squad, ALICE, FIRE, both_fire(), "0.95")


class TestVerifySystem:
    def test_sweeps_every_proper_action(self, theorem52):
        from repro.apps.theorem52 import bit_is_one

        verification = verify_system(theorem52, {"bit": bit_is_one()})
        assert verification.all_verified
        agents_seen = {key[0] for key in verification.results}
        assert "i" in agents_seen and "j" in agents_seen

    def test_summary_counts(self, theorem52):
        from repro.apps.theorem52 import bit_is_one

        verification = verify_system(theorem52, {"bit": bit_is_one()})
        text = verification.summary()
        assert "0 failures" in text

    def test_agent_restriction(self, theorem52):
        from repro.apps.theorem52 import bit_is_one

        verification = verify_system(
            theorem52, {"bit": bit_is_one()}, agents=["i"]
        )
        assert {key[0] for key in verification.results} == {"i"}
